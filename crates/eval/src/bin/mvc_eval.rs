//! Command-line entry point that regenerates the paper's figures.
//!
//! ```text
//! mvc-eval [fig4|fig5|fig6|fig7|adaptive|star|trajectory|all] [--trials N] [--csv DIR]
//! mvc-eval sweep [--mechanisms a,b,c] [--workload KIND] [--trials N] [--csv DIR]
//! mvc-eval trajectory [--mechanisms a,b,c] [--workload uniform|nonuniform] [--trials N] [--csv DIR]
//! mvc-eval throughput [--events N] [--threads N] [--objects N] [--shards 1,2,4,8]
//!                     [--workload KIND] [--sink mem|codec|stats|conflict|reach|competitive|tee]
//!                     [--net-clients N] [--clock-width N] [--csv DIR] [--out FILE]
//! mvc-eval serve [--addr HOST:PORT] [--clients N] [--out FILE] [--metrics-out FILE]
//! mvc-eval produce --addr HOST:PORT [--threads N] [--objects N] [--events N] [--seed N]
//! ```
//!
//! Each figure is printed as an aligned table; with `--csv DIR` the raw series
//! are additionally written as `DIR/<figure>.csv`.  The `sweep` command runs
//! arbitrary [`MechanismRegistry`] mechanisms — selected **by name**, never as
//! concrete types — over a synthetic workload family (`uniform`,
//! `nonuniform`, `producer-consumer`, `lock-striped`, `phased`, the
//! adversarial `star` and `matching` lower-bound streams, the
//! partition-churning `phase-shift`, or the community-local `clustered`).  The `trajectory` command reports the
//! per-reveal competitive trajectory (online size vs. the incrementally
//! maintained offline optimum of the revealed prefix).  The `throughput`
//! command times the sequential engine against the sharded engine at each
//! requested shard count — both as pure stamping and through the full
//! segmented-ingest pipeline with the `--sink`-selected egress backend —
//! and prints the result as **JSON** (written to `DIR/throughput.json` with
//! `--csv DIR`, or to an explicit path with `--out FILE`, e.g. the repo's
//! `BENCH_throughput.json` trajectory point), giving future changes a
//! mechanical bench trajectory to compare against; with `--net-clients N`
//! it also times the same workload streamed through the networked service
//! over loopback TCP.  The report's `wide` section compares the sequential
//! engine's dense and chunked stamp formats over clustered wide-clock
//! workloads (widths 64 and 4096 by default; `--clock-width N` pins a
//! single width instead).  The `serve` command runs the timestamping pipeline
//! as a multi-client TCP service until the expected number of producer
//! sessions completes and reports — as JSON — whether the merged networked
//! result equals a sequential batch replay (the oracle CI gates on); the
//! `produce` command is the matching workload-streaming client.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mvc_eval::{
    adaptive_ablation, competitive_trajectory, fig4, fig5, fig6, fig7, measure_throughput, produce,
    registry_sweep, render_csv, render_produce_json, render_serve_json, render_table,
    render_throughput_json, serve_with_metrics, star_sweep, FigureData, ProduceConfig, SinkKind,
    SweepConfig, ThroughputConfig,
};
use mvc_graph::GraphScenario;
use mvc_online::MechanismRegistry;
use mvc_trace::WorkloadKind;

const DEFAULT_TRIALS: usize = 10;

#[derive(Debug, Clone)]
struct Options {
    figures: Vec<String>,
    trials: usize,
    csv_dir: Option<PathBuf>,
    mechanisms: Vec<String>,
    /// `--workload`, when given.  `sweep` defaults to the star stream,
    /// `trajectory` to the nonuniform graph scenario, `throughput` to
    /// uniform.
    workload: Option<WorkloadKind>,
    /// `--events`, used by `throughput`.
    events: Option<usize>,
    /// `--threads`, used by `throughput` (workload threads; default 64).
    threads: Option<usize>,
    /// `--objects`, used by `throughput` (workload objects; default 64).
    objects: Option<usize>,
    /// `--shards`, used by `throughput`.
    shards: Option<Vec<usize>>,
    /// `--sink`, used by `throughput` (default `mem`).
    sink: Option<SinkKind>,
    /// `--out`, used by `throughput`: write the JSON to this exact path.
    out: Option<PathBuf>,
    /// `--net-clients`, used by `throughput` (loopback producers; 0 skips).
    net_clients: Option<usize>,
    /// `--clock-width`, used by `throughput`: pin the `wide` section to one
    /// width instead of the default 64-and-4096 pair.
    clock_width: Option<usize>,
    /// `--addr`, used by `serve` (bind address) and `produce` (server).
    addr: Option<String>,
    /// `--clients`, used by `serve`: sessions to expect before exiting.
    clients: Option<usize>,
    /// `--seed`, used by `produce` (workload seed).
    seed: Option<u64>,
    /// `--metrics-out`, used by `serve`: write the registry snapshot to
    /// this file (Prometheus text format) periodically and on shutdown.
    metrics_out: Option<PathBuf>,
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    match name {
        "uniform" => Ok(WorkloadKind::Uniform),
        "nonuniform" => Ok(WorkloadKind::Nonuniform {
            hot_fraction: 0.2,
            hot_boost: 6.0,
        }),
        "producer-consumer" => Ok(WorkloadKind::ProducerConsumer { queues: 4 }),
        "lock-striped" => Ok(WorkloadKind::LockStriped {
            cross_stripe_prob: 0.1,
        }),
        "phased" => Ok(WorkloadKind::Phased { phases: 4 }),
        "star" => Ok(WorkloadKind::Star { hubs: 1 }),
        "matching" => Ok(WorkloadKind::Matching {
            rotation_period: 64,
        }),
        "phase-shift" => Ok(WorkloadKind::PhaseShift {
            period: 256,
            shift: 1,
        }),
        "clustered" => Ok(WorkloadKind::Clustered { clusters: 8 }),
        other => Err(format!(
            "unknown workload '{other}' (expected uniform|nonuniform|producer-consumer|\
             lock-striped|phased|star|matching|phase-shift|clustered)"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut figures = Vec::new();
    let mut trials = DEFAULT_TRIALS;
    let mut csv_dir = None;
    let mut mechanisms = Vec::new();
    let mut workload = None;
    let mut events = None;
    let mut threads = None;
    let mut objects = None;
    let mut shards = None;
    let mut sink = None;
    let mut out = None;
    let mut net_clients = None;
    let mut clock_width = None;
    let mut addr = None;
    let mut clients = None;
    let mut seed = None;
    let mut metrics_out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trials" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--trials requires a value".to_string())?;
                trials = value
                    .parse()
                    .map_err(|_| format!("invalid trial count: {value}"))?;
                if trials == 0 {
                    return Err("trial count must be at least 1".into());
                }
            }
            "--csv" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--csv requires a directory".to_string())?;
                csv_dir = Some(PathBuf::from(value));
            }
            "--mechanisms" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--mechanisms requires a comma-separated list".to_string())?;
                let registry = MechanismRegistry::new();
                for name in value.split(',').filter(|n| !n.is_empty()) {
                    registry.from_name(name).map_err(|e| e.to_string())?;
                    mechanisms.push(name.to_string());
                }
                if mechanisms.is_empty() {
                    return Err("--mechanisms requires at least one name".into());
                }
            }
            "--workload" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--workload requires a family name".to_string())?;
                workload = Some(parse_workload(value)?);
            }
            "--events" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--events requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid event count: {value}"))?;
                if parsed == 0 {
                    return Err("event count must be at least 1".into());
                }
                events = Some(parsed);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--threads requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count: {value}"))?;
                if parsed == 0 {
                    return Err("thread count must be at least 1".into());
                }
                threads = Some(parsed);
            }
            "--objects" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--objects requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid object count: {value}"))?;
                if parsed == 0 {
                    return Err("object count must be at least 1".into());
                }
                objects = Some(parsed);
            }
            "--shards" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--shards requires a comma-separated list".to_string())?;
                let mut counts = Vec::new();
                for part in value.split(',').filter(|p| !p.is_empty()) {
                    let shard: usize = part
                        .parse()
                        .map_err(|_| format!("invalid shard count: {part}"))?;
                    if shard == 0 {
                        return Err("shard counts must be at least 1".into());
                    }
                    counts.push(shard);
                }
                if counts.is_empty() {
                    return Err("--shards requires at least one count".into());
                }
                shards = Some(counts);
            }
            "--sink" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--sink requires a backend name".to_string())?;
                sink = Some(SinkKind::parse(value)?);
            }
            "--out" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--out requires a file path".to_string())?;
                out = Some(PathBuf::from(value));
            }
            "--net-clients" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--net-clients requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid client count: {value}"))?;
                net_clients = Some(parsed);
            }
            "--clock-width" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--clock-width requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid clock width: {value}"))?;
                if parsed == 0 {
                    return Err("clock width must be at least 1".into());
                }
                clock_width = Some(parsed);
            }
            "--addr" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--addr requires HOST:PORT".to_string())?;
                addr = Some(value.clone());
            }
            "--clients" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--clients requires a value".to_string())?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid client count: {value}"))?;
                if parsed == 0 {
                    return Err("client count must be at least 1".into());
                }
                clients = Some(parsed);
            }
            "--seed" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
                seed = Some(parsed);
            }
            "--metrics-out" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--metrics-out requires a file path".to_string())?;
                metrics_out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mvc-eval [fig4|fig5|fig6|fig7|adaptive|star|trajectory|all] \
                     [--trials N] [--csv DIR]\n       mvc-eval sweep|trajectory \
                     [--mechanisms a,b,c] [--workload KIND] [--trials N] [--csv DIR]\n       \
                     mvc-eval throughput [--events N] [--threads N] [--objects N] \
                     [--shards 1,2,4,8] [--workload KIND] \
                     [--sink mem|codec|stats|conflict|reach|competitive|tee] \
                     [--net-clients N] [--clock-width N] [--csv DIR] [--out FILE]\n       \
                     mvc-eval serve [--addr HOST:PORT] [--clients N] [--out FILE] \
                     [--metrics-out FILE]\n       \
                     mvc-eval produce --addr HOST:PORT [--threads N] [--objects N] \
                     [--events N] [--seed N] [--workload KIND]"
                        .into(),
                )
            }
            name => figures.push(name.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Ok(Options {
        figures,
        trials,
        csv_dir,
        mechanisms,
        workload,
        events,
        threads,
        objects,
        shards,
        sink,
        out,
        net_clients,
        clock_width,
        addr,
        clients,
        seed,
        metrics_out,
    })
}

/// Default stamped events for `mvc-eval throughput`.
const DEFAULT_THROUGHPUT_EVENTS: usize = 200_000;

fn run_throughput(options: &Options) -> Result<String, String> {
    let mut config =
        ThroughputConfig::uniform_64x64(options.events.unwrap_or(DEFAULT_THROUGHPUT_EVENTS));
    if let Some(workload) = options.workload {
        config.workload = workload;
    }
    if let Some(threads) = options.threads {
        config.threads = threads;
    }
    if let Some(objects) = options.objects {
        config.objects = objects;
    }
    if let Some(shards) = &options.shards {
        config.shard_counts = shards.clone();
    }
    if let Some(sink) = options.sink {
        config.sink = sink;
    }
    if let Some(net_clients) = options.net_clients {
        config.net_clients = net_clients;
    }
    if let Some(width) = options.clock_width {
        config.wide_widths = vec![width];
    }
    let report = measure_throughput(&config);
    Ok(render_throughput_json(&report))
}

/// `mvc-eval serve`: run the networked timestamping service until the
/// expected number of client sessions completes, then print the summary —
/// including the networked-equals-batch oracle verdict — as JSON.
fn run_serve(options: &Options) -> Result<String, String> {
    let addr = options.addr.as_deref().unwrap_or("127.0.0.1:0");
    let expected = options.clients.unwrap_or(1);
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Ok(bound) = listener.local_addr() {
        // Stderr, so stdout stays pure JSON for scripts; lets callers
        // discover an ephemeral port when `--addr` ends in `:0`.
        eprintln!("mvc-eval serve: listening on {bound}, expecting {expected} client(s)");
    }
    serve_with_metrics(listener, expected, options.metrics_out.as_deref())
        .map(|summary| render_serve_json(&summary))
}

/// `mvc-eval produce`: stream one seeded synthetic workload to a running
/// server and print the session summary as JSON.
fn run_produce(options: &Options) -> Result<String, String> {
    let addr = options
        .addr
        .as_deref()
        .ok_or_else(|| "produce requires --addr HOST:PORT".to_string())?;
    let mut config = ProduceConfig::default();
    if let Some(workload) = options.workload {
        config.workload = workload;
    }
    if let Some(threads) = options.threads {
        config.threads = threads;
    }
    if let Some(objects) = options.objects {
        config.objects = objects;
    }
    if let Some(events) = options.events {
        config.events = events;
    }
    if let Some(seed) = options.seed {
        config.seed = seed;
    }
    produce(addr, &config).map(|summary| render_produce_json(&summary))
}

fn run_figure(name: &str, options: &Options) -> Result<Vec<FigureData>, String> {
    let trials = options.trials;
    match name {
        "fig4" => Ok(vec![fig4(trials)]),
        "fig5" => Ok(vec![fig5(trials)]),
        "fig6" => Ok(vec![fig6(trials)]),
        "fig7" => Ok(vec![fig7(trials)]),
        "adaptive" => Ok(vec![adaptive_ablation(trials)]),
        "star" => Ok(vec![star_sweep(trials)]),
        "trajectory" => {
            let names = if options.mechanisms.is_empty() {
                MechanismRegistry::names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            } else {
                options.mechanisms.clone()
            };
            // The trajectory sweeps random *graph* scenarios, so only the
            // workloads with a graph-scenario counterpart are accepted.
            let scenario = match options.workload {
                None => GraphScenario::default_nonuniform(),
                Some(WorkloadKind::Uniform) => GraphScenario::Uniform,
                Some(WorkloadKind::Nonuniform {
                    hot_fraction,
                    hot_boost,
                }) => GraphScenario::Nonuniform {
                    hot_fraction,
                    hot_boost,
                },
                Some(other) => {
                    return Err(format!(
                        "trajectory does not support --workload {} \
                         (expected uniform|nonuniform)",
                        other.name()
                    ))
                }
            };
            let cfg = SweepConfig::fifty_by_fifty(0.1, scenario, trials);
            competitive_trajectory(&names, &cfg)
                .map(|f| vec![f])
                .map_err(|e| e.to_string())
        }
        "sweep" => {
            let names = if options.mechanisms.is_empty() {
                MechanismRegistry::names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            } else {
                options.mechanisms.clone()
            };
            let workload = options.workload.unwrap_or(WorkloadKind::Star { hubs: 1 });
            registry_sweep(&names, workload, trials)
                .map(|f| vec![f])
                .map_err(|e| e.to_string())
        }
        "all" => {
            let mut figures = vec![
                fig4(trials),
                fig5(trials),
                fig6(trials),
                fig7(trials),
                adaptive_ablation(trials),
                star_sweep(trials),
            ];
            // `all` historically ignores `--workload` (it is a `sweep`/
            // `trajectory` refinement), so the trajectory leg always runs
            // with its default scenario rather than failing on a workload
            // the trajectory figure cannot represent.
            let mut defaults = options.clone();
            defaults.workload = None;
            figures.extend(run_figure("trajectory", &defaults)?);
            Ok(figures)
        }
        other => Err(format!(
            "unknown figure '{other}' (expected \
             fig4|fig5|fig6|fig7|adaptive|star|trajectory|sweep|throughput|serve|produce|all)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    for name in &options.figures {
        if matches!(name.as_str(), "throughput" | "serve" | "produce") {
            let result = match name.as_str() {
                "throughput" => run_throughput(&options),
                "serve" => run_serve(&options),
                _ => run_produce(&options),
            };
            let json = match result {
                Ok(json) => json,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{json}");
            if let Some(dir) = &options.csv_dir {
                if let Err(e) = fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                let path = dir.join(format!("{name}.json"));
                if let Err(e) = fs::write(&path, &json) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            if let Some(path) = &options.out {
                if let Err(e) = fs::write(path, &json) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            continue;
        }
        let figures = match run_figure(name, &options) {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        for figure in figures {
            println!("{}", render_table(&figure));
            if let Some(dir) = &options.csv_dir {
                if let Err(e) = fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                let path = dir.join(format!("{}.csv", figure.id));
                if let Err(e) = fs::write(&path, render_csv(&figure)) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn opts(trials: usize) -> Options {
        Options {
            figures: vec![],
            trials,
            csv_dir: None,
            mechanisms: vec![],
            workload: None,
            events: None,
            threads: None,
            objects: None,
            shards: None,
            sink: None,
            out: None,
            net_clients: None,
            clock_width: None,
            addr: None,
            clients: None,
            seed: None,
            metrics_out: None,
        }
    }

    #[test]
    fn default_options_run_everything() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.figures, vec!["all"]);
        assert_eq!(o.trials, DEFAULT_TRIALS);
        assert!(o.csv_dir.is_none());
        assert!(o.mechanisms.is_empty());
    }

    #[test]
    fn explicit_figure_and_trials() {
        let o = parse_args(&args(&["fig6", "--trials", "3", "--csv", "/tmp/out"])).unwrap();
        assert_eq!(o.figures, vec!["fig6"]);
        assert_eq!(o.trials, 3);
        assert_eq!(o.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/out")));
    }

    #[test]
    fn sweep_options_validate_mechanisms_through_the_registry() {
        let o = parse_args(&args(&[
            "sweep",
            "--mechanisms",
            "popularity,adaptive",
            "--workload",
            "star",
        ]))
        .unwrap();
        assert_eq!(o.figures, vec!["sweep"]);
        assert_eq!(o.mechanisms, vec!["popularity", "adaptive"]);
        assert_eq!(o.workload, Some(WorkloadKind::Star { hubs: 1 }));

        let err = parse_args(&args(&["sweep", "--mechanisms", "quantum"])).unwrap_err();
        assert!(err.contains("unknown mechanism 'quantum'"));
        assert!(err.contains("popularity"), "error lists the candidates");
    }

    #[test]
    fn workload_names_parse() {
        for name in [
            "uniform",
            "nonuniform",
            "producer-consumer",
            "lock-striped",
            "phased",
            "star",
            "matching",
            "phase-shift",
            "clustered",
        ] {
            assert_eq!(parse_workload(name).unwrap().name(), name);
        }
        assert!(parse_workload("fractal").is_err());
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(parse_args(&args(&["--trials"])).is_err());
        assert!(parse_args(&args(&["--trials", "zero"])).is_err());
        assert!(parse_args(&args(&["--trials", "0"])).is_err());
        assert!(parse_args(&args(&["--csv"])).is_err());
        assert!(parse_args(&args(&["--mechanisms"])).is_err());
        assert!(parse_args(&args(&["--mechanisms", ""])).is_err());
        assert!(parse_args(&args(&["--workload"])).is_err());
        assert!(parse_args(&args(&["--events"])).is_err());
        assert!(parse_args(&args(&["--events", "0"])).is_err());
        assert!(parse_args(&args(&["--events", "many"])).is_err());
        assert!(parse_args(&args(&["--threads"])).is_err());
        assert!(parse_args(&args(&["--threads", "0"])).is_err());
        assert!(parse_args(&args(&["--objects"])).is_err());
        assert!(parse_args(&args(&["--objects", "0"])).is_err());
        assert!(parse_args(&args(&["--shards"])).is_err());
        assert!(parse_args(&args(&["--shards", ""])).is_err());
        assert!(parse_args(&args(&["--shards", "2,0"])).is_err());
        assert!(parse_args(&args(&["--shards", "two"])).is_err());
        assert!(parse_args(&args(&["--sink"])).is_err());
        assert!(parse_args(&args(&["--sink", "paper"])).is_err());
        assert!(parse_args(&args(&["--clock-width"])).is_err());
        assert!(parse_args(&args(&["--clock-width", "0"])).is_err());
        assert!(parse_args(&args(&["--clock-width", "wide"])).is_err());
        assert!(parse_args(&args(&["--out"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
        assert!(run_figure("fig99", &opts(1)).is_err());
    }

    #[test]
    fn throughput_options_parse_and_run() {
        let o = parse_args(&args(&[
            "throughput",
            "--events",
            "2000",
            "--threads",
            "8",
            "--objects",
            "8",
            "--shards",
            "1,2",
            "--workload",
            "phase-shift",
            "--sink",
            "stats",
            "--net-clients",
            "0",
            "--clock-width",
            "64",
            "--out",
            "/tmp/bench.json",
        ]))
        .unwrap();
        assert_eq!(o.figures, vec!["throughput"]);
        assert_eq!(o.events, Some(2000));
        assert_eq!(o.threads, Some(8));
        assert_eq!(o.objects, Some(8));
        assert_eq!(o.shards, Some(vec![1, 2]));
        assert_eq!(o.sink, Some(SinkKind::Stats));
        assert_eq!(o.clock_width, Some(64));
        assert_eq!(
            o.out.as_deref(),
            Some(std::path::Path::new("/tmp/bench.json"))
        );

        assert_eq!(o.net_clients, Some(0));
        let json = run_throughput(&o).unwrap();
        assert!(json.contains("\"workload\": \"phase-shift\""));
        assert!(json.contains("\"events\": 2000"));
        assert!(
            json.contains("\"wide\": [") && json.contains("\"width\": 64"),
            "--clock-width pins the wide section to one width"
        );
        assert!(
            !json.contains("\"width\": 4096"),
            "the default width pair is replaced"
        );
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"objects\": 8"));
        assert!(json.contains("\"sink\": \"stats\""));
        assert!(json.contains("\"ingest\": ["));
        assert!(json.contains("\"engine\": \"sharded\""));
        assert!(json.contains("\"ingest_baseline\": {"));
        assert!(json.contains("\"sink_relative_throughput\":"));
        assert!(
            json.contains("\"net\": null"),
            "--net-clients 0 skips the slot"
        );
    }

    #[test]
    fn serve_and_produce_options_parse() {
        let o = parse_args(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--clients",
            "2",
            "--metrics-out",
            "/tmp/metrics.prom",
        ]))
        .unwrap();
        assert_eq!(o.figures, vec!["serve"]);
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.clients, Some(2));
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.prom"))
        );
        assert!(parse_args(&args(&["serve", "--metrics-out"])).is_err());

        let o = parse_args(&args(&["produce", "--addr", "127.0.0.1:9", "--seed", "11"])).unwrap();
        assert_eq!(o.figures, vec!["produce"]);
        assert_eq!(o.seed, Some(11));

        assert!(parse_args(&args(&["serve", "--clients", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--clients"])).is_err());
        assert!(parse_args(&args(&["produce", "--seed", "x"])).is_err());
        assert!(parse_args(&args(&["throughput", "--net-clients", "x"])).is_err());
        assert!(run_produce(&opts(1)).unwrap_err().contains("--addr"));
    }

    #[test]
    fn throughput_measures_the_networked_service_when_asked() {
        let mut o = parse_args(&args(&[
            "throughput",
            "--events",
            "1500",
            "--threads",
            "4",
            "--objects",
            "4",
            "--shards",
            "1",
            "--net-clients",
            "2",
            "--clock-width",
            "64",
        ]))
        .unwrap();
        o.trials = 1;
        let json = run_throughput(&o).unwrap();
        assert!(json.contains("\"net\": {"), "{json}");
        assert!(json.contains("\"clients\": 2"), "{json}");
        assert!(json.contains("\"relative_to_ingest\":"), "{json}");
    }

    #[test]
    fn analysis_sink_names_are_accepted() {
        for name in ["conflict", "reach", "competitive"] {
            let o = parse_args(&args(&["throughput", "--sink", name])).unwrap();
            assert_eq!(o.sink.unwrap().name(), name);
        }
    }

    #[test]
    fn run_figure_dispatches_names() {
        assert_eq!(run_figure("fig4", &opts(1)).unwrap().len(), 1);
        assert_eq!(run_figure("adaptive", &opts(1)).unwrap().len(), 1);
        assert_eq!(run_figure("star", &opts(1)).unwrap().len(), 1);
        assert_eq!(run_figure("all", &opts(1)).unwrap().len(), 7);
    }

    #[test]
    fn trajectory_defaults_to_every_registry_mechanism() {
        let figures = run_figure("trajectory", &opts(1)).unwrap();
        assert_eq!(figures.len(), 1);
        assert_eq!(figures[0].id, "trajectory");
        assert_eq!(
            figures[0].series.len(),
            MechanismRegistry::names().len() + 1,
            "every registry mechanism plus the offline-optimal reference"
        );
    }

    #[test]
    fn trajectory_honors_the_workload_flag_where_it_can() {
        let mut options = opts(1);
        options.mechanisms = vec!["popularity".to_string()];
        options.workload = Some(WorkloadKind::Uniform);
        let figures = run_figure("trajectory", &options).unwrap();
        assert!(figures[0].title.contains("uniform"));

        options.workload = Some(WorkloadKind::Star { hubs: 1 });
        let err = run_figure("trajectory", &options).unwrap_err();
        assert!(
            err.contains("does not support --workload star"),
            "graph-less workloads must be rejected, not silently remapped: {err}"
        );

        // `all` ignores --workload for its trajectory leg instead of
        // failing after computing six figures.
        assert_eq!(run_figure("all", &options).unwrap().len(), 7);
    }

    #[test]
    fn sweep_defaults_to_every_registry_mechanism() {
        let figures = run_figure("sweep", &opts(1)).unwrap();
        assert_eq!(figures.len(), 1);
        // Every registry mechanism plus the offline-optimal reference.
        assert_eq!(
            figures[0].series.len(),
            MechanismRegistry::names().len() + 1
        );
    }
}
