//! The networked service legs of the harness: `mvc-eval serve`,
//! `mvc-eval produce`, and the loopback-TCP throughput slot.
//!
//! `serve` binds a TCP listener, runs the [`mvc_net`] session server over a
//! sequential engine + memory recorder until the expected number of client
//! sessions has completed, and then executes the **networked-equals-batch
//! oracle** right there in the process: the recorded merged interleaving is
//! replayed through a fresh sequential engine under the server's own final
//! component map and compared bit for bit.  The JSON summary carries the
//! verdict (`"batch_equal"`), which is what CI gates on.
//!
//! `produce` generates a seeded synthetic workload and streams it to a
//! running server as one producer client, reporting how many events were
//! acknowledged and how many stamps came back.
//!
//! `time_one_net` is the throughput harness's loopback slot: one server +
//! N producer clients over `127.0.0.1`, memory sink, stamp return switched
//! off — the cost under measurement is framing + transport + ingress
//! ticketing + merge + stamping, not the echo path.

use std::any::Any;
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvc_core::{replay, MemoryRecorder, TimestampingEngine};
use mvc_net::{serve_tcp, ClientConfig, NetServer, ProducerClient, ServerConfig, TcpTransport};
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

/// Summary of one `mvc-eval serve` run, rendered as JSON for CI.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The address the listener was bound to.
    pub addr: String,
    /// Completed client sessions.
    pub sessions: usize,
    /// Total events ingested across all sessions.
    pub events: usize,
    /// Final clock width (one component per registered object).
    pub clock_width: usize,
    /// Every session ran to a clean `Goodbye`.
    pub completed: bool,
    /// The networked-equals-batch oracle: the merged interleaving replayed
    /// sequentially produces the identical stamp stream.
    pub batch_equal: bool,
    /// Registry snapshot delta covering the serve run — the `metrics`
    /// section of the JSON summary (see docs/OBSERVABILITY.md).
    pub metrics: mvc_obs::Snapshot,
}

/// Runs the session server on `listener` until `expected_clients` sessions
/// complete, then replays the recorded trace sequentially and compares.
///
/// The run executes with the global [`mvc_obs`] registry enabled; the
/// summary carries the snapshot delta it produced.
///
/// # Errors
///
/// Returns a rendered message when the server loop or the replay fails.
pub fn serve(listener: TcpListener, expected_clients: usize) -> Result<ServeSummary, String> {
    serve_with_metrics(listener, expected_clients, None)
}

/// [`serve`], additionally writing the registry snapshot to `metrics_out`
/// in the Prometheus text exposition format — every 500 ms while the
/// server runs, and once more on shutdown.
///
/// # Errors
///
/// Returns a rendered message when the server loop or the replay fails
/// (a failed metrics write is reported on stderr, never fatal: the
/// metrics file is advisory, the session data is not).
pub fn serve_with_metrics(
    listener: TcpListener,
    expected_clients: usize,
    metrics_out: Option<&Path>,
) -> Result<ServeSummary, String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read listener address: {e}"))?
        .to_string();
    let registry = mvc_obs::global();
    registry.set_enabled(true);
    let before = registry.snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = metrics_out.map(|path| {
        let path = path.to_owned();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            loop {
                // Sleep first so a short-lived server still gets exactly
                // one final write below rather than a half-warm scrape.
                for _ in 0..5 {
                    if stop.load(Ordering::Acquire) {
                        return path;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                let text = mvc_obs::global().snapshot().to_prometheus();
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("mvc-eval serve: cannot write {}: {e}", path.display());
                }
            }
        })
    });
    let server = NetServer::new(
        TimestampingEngine::new(),
        Box::new(MemoryRecorder::new()),
        ServerConfig::default(),
    );
    let run = serve_tcp(listener, server, expected_clients);
    stop.store(true, Ordering::Release);
    if let Some(handle) = writer {
        if let Ok(path) = handle.join() {
            let text = mvc_obs::global().snapshot().to_prometheus();
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("mvc-eval serve: cannot write {}: {e}", path.display());
            }
        }
    }
    let metrics = registry.snapshot().delta(&before);
    let run = run.map_err(|e| e.to_string())?;
    let recorder = run
        .sink
        .as_any()
        .downcast_ref::<MemoryRecorder>()
        .expect("serve uses a memory recorder");
    let computation = recorder.computation();
    let mut engine = TimestampingEngine::with_components(run.report.components.clone());
    let batch = replay(&mut engine, computation)
        .map_err(|e| format!("batch replay of the merged trace failed: {e}"))?
        .timestamps;
    Ok(ServeSummary {
        addr,
        sessions: run.sessions.len(),
        events: computation.len(),
        clock_width: run.report.components.len(),
        completed: run.sessions.iter().all(|s| s.completed),
        batch_equal: batch.as_slice() == recorder.timestamps(),
        metrics,
    })
}

/// Renders a [`ServeSummary`] as the stable JSON object `mvc-eval serve`
/// prints.
pub fn render_serve_json(summary: &ServeSummary) -> String {
    format!(
        "{{\n  \"addr\": \"{}\",\n  \"sessions\": {},\n  \"events\": {},\n  \
         \"clock_width\": {},\n  \"completed\": {},\n  \"batch_equal\": {},\n  \
         \"metrics\": {}\n}}",
        summary.addr,
        summary.sessions,
        summary.events,
        summary.clock_width,
        summary.completed,
        summary.batch_equal,
        summary.metrics.to_json()
    )
}

/// Configuration for one `mvc-eval produce` client.
#[derive(Debug, Clone)]
pub struct ProduceConfig {
    /// Threads in the generated workload (all owned by this client).
    pub threads: usize,
    /// Objects in the generated workload.
    pub objects: usize,
    /// Operations to generate and stream.
    pub events: usize,
    /// The workload family.
    pub workload: WorkloadKind,
    /// Workload seed — give each concurrent producer its own.
    pub seed: u64,
    /// Whether to request the stamped results back.
    pub want_stamps: bool,
}

impl Default for ProduceConfig {
    fn default() -> Self {
        ProduceConfig {
            threads: 4,
            objects: 8,
            events: 10_000,
            workload: WorkloadKind::Uniform,
            seed: 42,
            want_stamps: true,
        }
    }
}

/// Summary of one `mvc-eval produce` run, rendered as JSON for CI.
#[derive(Debug, Clone)]
pub struct ProduceSummary {
    /// The session token the server assigned.
    pub token: u64,
    /// Events streamed and acknowledged.
    pub events: usize,
    /// Stamps received back (0 when stamps were not requested).
    pub stamps: usize,
    /// Reconnects performed (always 0 for this one-shot client).
    pub reconnects: usize,
    /// `Events`-frame send → completing-stamp arrival round trips measured
    /// (0 when stamps were not requested).
    pub rtt_count: u64,
    /// Median stamp round-trip latency, nanoseconds (bucketed: the value
    /// is the upper power-of-two edge of the quantile's bucket).
    pub rtt_p50_ns: u64,
    /// 95th-percentile stamp round-trip latency, nanoseconds.
    pub rtt_p95_ns: u64,
    /// 99th-percentile stamp round-trip latency, nanoseconds.
    pub rtt_p99_ns: u64,
}

/// Streams one seeded synthetic workload to the server at `addr` and blocks
/// until the session completes.
///
/// # Errors
///
/// Returns a rendered message when the connection or the session fails.
pub fn produce(addr: &str, config: &ProduceConfig) -> Result<ProduceSummary, String> {
    let computation = WorkloadBuilder::new(config.threads, config.objects)
        .operations(config.events)
        .kind(config.workload)
        .seed(config.seed)
        .build();
    let transport = TcpTransport::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
    let threads = (0..config.threads).map(|t| format!("t{t}")).collect();
    let objects = (0..config.objects).map(|o| format!("o{o}")).collect();
    let mut client = ProducerClient::connect(
        transport,
        ClientConfig::new(threads, objects, config.want_stamps),
    )
    .map_err(|e| e.to_string())?;
    for e in computation.events() {
        client.record(e.thread.index(), e.object.index(), e.kind);
    }
    client.request_finish();
    let run = client.finish().map_err(|e| e.to_string())?;
    Ok(ProduceSummary {
        token: run.token,
        events: run.events as usize,
        stamps: run.stamps.len(),
        reconnects: run.reconnects as usize,
        rtt_count: run.stamp_rtt.count,
        rtt_p50_ns: run.stamp_rtt.quantile(0.50),
        rtt_p95_ns: run.stamp_rtt.quantile(0.95),
        rtt_p99_ns: run.stamp_rtt.quantile(0.99),
    })
}

/// Renders a [`ProduceSummary`] as the stable JSON object `mvc-eval produce`
/// prints.
pub fn render_produce_json(summary: &ProduceSummary) -> String {
    format!(
        "{{\n  \"token\": {},\n  \"events\": {},\n  \"stamps\": {},\n  \"reconnects\": {},\n  \
         \"rtt_count\": {},\n  \"rtt_p50_ns\": {},\n  \"rtt_p95_ns\": {},\n  \
         \"rtt_p99_ns\": {}\n}}",
        summary.token,
        summary.events,
        summary.stamps,
        summary.reconnects,
        summary.rtt_count,
        summary.rtt_p50_ns,
        summary.rtt_p95_ns,
        summary.rtt_p99_ns
    )
}

/// Times one pass of `computation` through the networked service over
/// loopback TCP: `clients` producer clients (the workload's threads
/// partitioned round-robin across them, every client registering every
/// object) against one thread-per-connection server with a sequential
/// engine and a memory sink.
///
/// Events are recorded into the clients' local logs untimed — mirroring
/// [`time_one_ingest`](crate::throughput)'s untimed staging — then the
/// clock covers connect-to-goodbye streaming: framing, transport, ingress
/// ticketing, merge, stamping and sink delivery.
pub(crate) fn time_one_net(
    computation: &Computation,
    threads: usize,
    objects: usize,
    clients: usize,
) -> (u128, Box<dyn Any>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("listener address");

    // Partition the workload's threads round-robin; `local[t]` maps a
    // global thread to its owner client and local index there.
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); clients];
    for t in 0..threads {
        owned[t % clients].push(t);
    }
    let mut local = vec![(0usize, 0usize); threads];
    for (c, ts) in owned.iter().enumerate() {
        for (i, &t) in ts.iter().enumerate() {
            local[t] = (c, i);
        }
    }

    // Connecting before the accept loop runs is fine: the listener is
    // bound, so the kernel queues the handshakes.
    let object_names: Vec<String> = (0..objects).map(|o| format!("o{o}")).collect();
    let mut producers = Vec::new();
    for ts in &owned {
        let names: Vec<String> = ts.iter().map(|t| format!("t{t}")).collect();
        let transport = TcpTransport::connect(addr).expect("connect loopback client");
        let client = ProducerClient::connect(
            transport,
            ClientConfig::new(names, object_names.clone(), false),
        )
        .expect("client handshake");
        producers.push(client);
    }
    for e in computation.events() {
        let (c, lt) = local[e.thread.index()];
        producers[c].record(lt, e.object.index(), e.kind);
    }
    for p in &mut producers {
        p.request_finish();
    }

    let server = NetServer::new(
        TimestampingEngine::new(),
        Box::new(MemoryRecorder::new()),
        ServerConfig::default(),
    );
    let start = Instant::now();
    let mut server_run = None;
    std::thread::scope(|scope| {
        let srv = scope.spawn(|| serve_tcp(listener, server, clients));
        let drivers: Vec<_> = producers
            .into_iter()
            .map(|p| scope.spawn(move || p.finish().expect("producer session")))
            .collect();
        for d in drivers {
            d.join().expect("producer thread");
        }
        server_run = Some(srv.join().expect("server thread").expect("server run"));
    });
    let elapsed = start.elapsed().as_nanos();
    let run = server_run.expect("server run present");
    assert_eq!(run.report.events, computation.len());
    (elapsed, Box::new(run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn serve_and_produce_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || serve(listener, 2));
        let producers: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                thread::spawn(move || {
                    produce(
                        &addr,
                        &ProduceConfig {
                            threads: 2,
                            objects: 4,
                            events: 500,
                            seed: 7 + i,
                            ..ProduceConfig::default()
                        },
                    )
                })
            })
            .collect();
        let mut streamed = 0;
        for p in producers {
            let summary = p.join().unwrap().unwrap();
            assert_eq!(summary.events, 500);
            assert_eq!(summary.stamps, 500);
            assert_eq!(summary.reconnects, 0);
            assert!(summary.rtt_count > 0, "stamped session measures RTT");
            assert!(summary.rtt_p50_ns > 0);
            assert!(summary.rtt_p99_ns >= summary.rtt_p50_ns);
            streamed += summary.events;
        }
        let summary = server.join().unwrap().unwrap();
        assert_eq!(summary.sessions, 2);
        assert_eq!(summary.events, streamed);
        assert!(summary.completed);
        assert!(summary.batch_equal, "networked-equals-batch oracle");
        let opened = summary.metrics.counter("net.server.sessions_opened");
        assert!(opened >= Some(2), "serve run captures server metrics");
        let json = render_serve_json(&summary);
        assert!(json.contains("\"batch_equal\": true"));
        assert!(json.contains("\"sessions\": 2"));
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"net.server.events_ingested\":"));
    }

    #[test]
    fn produce_fails_cleanly_when_nothing_listens() {
        let err = produce("127.0.0.1:1", &ProduceConfig::default()).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn net_slot_measures_a_multi_client_loopback_run() {
        let computation = WorkloadBuilder::new(8, 8)
            .operations(2_000)
            .kind(WorkloadKind::Uniform)
            .seed(5)
            .build();
        let (elapsed, run) = time_one_net(&computation, 8, 8, 2);
        assert!(elapsed > 0);
        let run = run.downcast::<mvc_net::ServerRun>().unwrap();
        assert_eq!(run.report.events, 2_000);
        assert_eq!(run.sessions.len(), 2);
        assert!(run.sessions.iter().all(|s| s.completed));
    }

    #[test]
    fn produce_json_is_stable() {
        let json = render_produce_json(&ProduceSummary {
            token: 3,
            events: 10,
            stamps: 10,
            reconnects: 0,
            rtt_count: 2,
            rtt_p50_ns: 1023,
            rtt_p95_ns: 2047,
            rtt_p99_ns: 2047,
        });
        assert_eq!(
            json,
            "{\n  \"token\": 3,\n  \"events\": 10,\n  \"stamps\": 10,\n  \"reconnects\": 0,\n  \
             \"rtt_count\": 2,\n  \"rtt_p50_ns\": 1023,\n  \"rtt_p95_ns\": 2047,\n  \
             \"rtt_p99_ns\": 2047\n}"
        );
    }

    #[test]
    fn serve_with_metrics_writes_a_prometheus_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "mvc-eval-metrics-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let metrics_path = path.clone();
        let server = thread::spawn(move || serve_with_metrics(listener, 1, Some(&metrics_path)));
        let summary = produce(
            &addr,
            &ProduceConfig {
                events: 200,
                ..ProduceConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.events, 200);
        server.join().unwrap().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("# TYPE net_server_events_ingested counter"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
