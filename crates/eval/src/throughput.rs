//! Engine throughput measurement: sequential vs. sharded events/second.
//!
//! The paper's figures measure clock *size*; this module measures recording
//! *speed* — how many events per second a timestamper stamps when driven
//! through the unified batch path ([`mvc_core::replay`]).  The `mvc-eval
//! throughput` command emits the result as JSON so successive PRs can
//! compare bench trajectories mechanically (`jq`-able, no table parsing).
//!
//! Every engine sees the identical precomputed workload and the identical
//! offline-optimal component map, so the numbers isolate engine overhead:
//! routing, slice arithmetic, merge, and (for the threaded executor)
//! queue traffic.

use std::time::Instant;

use mvc_core::{replay, OfflineOptimizer, TimestampingEngine};
use mvc_shard::{ShardExecutor, ShardedEngine};
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

/// Configuration for one throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Threads in the synthetic workload.
    pub threads: usize,
    /// Objects in the synthetic workload.
    pub objects: usize,
    /// Operations to generate and stamp.
    pub events: usize,
    /// The workload family.
    pub workload: WorkloadKind,
    /// Shard counts to measure the sharded engine at.
    pub shard_counts: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
    /// Timed repetitions per engine (the best run is reported, like a
    /// benchmark's minimum — throughput noise is one-sided).
    pub repeats: usize,
}

impl ThroughputConfig {
    /// The acceptance configuration: a uniform 64-thread / 64-object stream,
    /// sharded at 1/2/4/8.
    pub fn uniform_64x64(events: usize) -> Self {
        ThroughputConfig {
            threads: 64,
            objects: 64,
            events,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1, 2, 4, 8],
            seed: 42,
            repeats: 3,
        }
    }
}

/// One engine's measured throughput.
#[derive(Debug, Clone)]
pub struct EngineThroughput {
    /// `"sequential"` or `"sharded"`.
    pub engine: String,
    /// Shard count (1 for the sequential engine).
    pub shards: usize,
    /// Executor label (`"none"` for the sequential engine, otherwise
    /// `"inline"` / `"threads"`).
    pub executor: String,
    /// Best elapsed wall-clock nanoseconds over the repeats.
    pub elapsed_ns: u128,
    /// Events per second derived from the best run.
    pub events_per_sec: f64,
    /// Speedup over the sequential engine measured in the same report.
    pub speedup: f64,
}

/// A full throughput report: workload metadata plus one row per engine.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The workload family name.
    pub workload: String,
    /// Threads in the workload.
    pub threads: usize,
    /// Objects in the workload.
    pub objects: usize,
    /// Events stamped per run.
    pub events: usize,
    /// Width of the offline-optimal clock all engines replayed with.
    pub clock_width: usize,
    /// Measured engines, sequential first.
    pub engines: Vec<EngineThroughput>,
}

/// Times one replay of `computation` through a fresh engine.
fn time_one(mut engine: Box<dyn mvc_core::Timestamper>, computation: &Computation) -> u128 {
    let start = Instant::now();
    let run = replay(engine.as_mut(), computation).expect("plan covers the workload");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(run.timestamps.len(), computation.len());
    elapsed
}

/// Times every engine `repeats` times, interleaved round-robin (one rep of
/// each engine per round) so machine-level noise — frequency scaling, noisy
/// neighbours — hits all engines alike, and returns each engine's best run
/// (throughput noise is one-sided).  A leading untimed warm-up round maps
/// the allocator arena the stamp vectors will recycle, so the timed rounds
/// measure steady-state throughput rather than first-touch page faults.
fn time_interleaved(
    factories: &mut [Box<dyn FnMut() -> Box<dyn mvc_core::Timestamper> + '_>],
    computation: &Computation,
    repeats: usize,
) -> Vec<u128> {
    let mut best = vec![u128::MAX; factories.len()];
    for round in 0..repeats.max(1) + 1 {
        for (i, make) in factories.iter_mut().enumerate() {
            let elapsed = time_one(make(), computation);
            if round > 0 {
                best[i] = best[i].min(elapsed);
            }
        }
    }
    best
}

fn events_per_sec(events: usize, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    events as f64 / (elapsed_ns as f64 / 1e9)
}

/// Measures the sequential engine and the sharded engine (at every
/// configured shard count) over the same workload and component map.
pub fn measure_throughput(config: &ThroughputConfig) -> ThroughputReport {
    let computation = WorkloadBuilder::new(config.threads, config.objects)
        .operations(config.events)
        .kind(config.workload)
        .seed(config.seed)
        .build();
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);
    let map = plan.components().clone();

    let executor = ShardExecutor::auto();
    let executor_name = match executor {
        ShardExecutor::Inline => "inline",
        ShardExecutor::Threads => "threads",
    };
    let mut factories: Vec<Box<dyn FnMut() -> Box<dyn mvc_core::Timestamper> + '_>> = Vec::new();
    factories.push(Box::new(|| {
        Box::new(TimestampingEngine::with_components(map.clone()))
    }));
    for &shards in &config.shard_counts {
        let map = &map;
        factories.push(Box::new(move || {
            Box::new(ShardedEngine::with_executor(map.clone(), shards, executor))
        }));
    }
    let timings = time_interleaved(&mut factories, &computation, config.repeats);
    drop(factories);

    let sequential_ns = timings[0];
    let mut engines = vec![EngineThroughput {
        engine: "sequential".to_owned(),
        shards: 1,
        executor: "none".to_owned(),
        elapsed_ns: sequential_ns,
        events_per_sec: events_per_sec(config.events, sequential_ns),
        speedup: 1.0,
    }];
    for (&shards, &ns) in config.shard_counts.iter().zip(&timings[1..]) {
        engines.push(EngineThroughput {
            engine: "sharded".to_owned(),
            shards,
            executor: executor_name.to_owned(),
            elapsed_ns: ns,
            events_per_sec: events_per_sec(config.events, ns),
            speedup: if ns == 0 {
                0.0
            } else {
                sequential_ns as f64 / ns as f64
            },
        });
    }

    ThroughputReport {
        workload: config.workload.name().to_owned(),
        threads: config.threads,
        objects: config.objects,
        events: config.events,
        clock_width: map.len(),
        engines,
    }
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        "null".to_owned()
    }
}

/// Renders a report as a single JSON object (two-space indent, stable key
/// order) — the machine-readable output of `mvc-eval throughput`.
pub fn render_throughput_json(report: &ThroughputReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", report.workload));
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str(&format!("  \"objects\": {},\n", report.objects));
    out.push_str(&format!("  \"events\": {},\n", report.events));
    out.push_str(&format!("  \"clock_width\": {},\n", report.clock_width));
    out.push_str("  \"engines\": [\n");
    for (i, e) in report.engines.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"engine\": \"{}\", ", e.engine));
        out.push_str(&format!("\"shards\": {}, ", e.shards));
        out.push_str(&format!("\"executor\": \"{}\", ", e.executor));
        out.push_str(&format!("\"elapsed_ns\": {}, ", e.elapsed_ns));
        out.push_str(&format!(
            "\"events_per_sec\": {}, ",
            json_f64(e.events_per_sec)
        ));
        out.push_str(&format!("\"speedup\": {}", json_f64(e.speedup)));
        out.push('}');
        if i + 1 < report.engines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_configured_engine() {
        let config = ThroughputConfig {
            threads: 8,
            objects: 8,
            events: 2_000,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1, 2],
            seed: 3,
            repeats: 1,
        };
        let report = measure_throughput(&config);
        assert_eq!(report.engines.len(), 3);
        assert_eq!(report.engines[0].engine, "sequential");
        assert_eq!(report.engines[0].speedup, 1.0);
        assert_eq!(report.engines[1].shards, 1);
        assert_eq!(report.engines[2].shards, 2);
        assert!(report.clock_width > 0);
        for e in &report.engines {
            assert!(e.events_per_sec > 0.0, "{}: zero throughput", e.engine);
        }
    }

    #[test]
    fn json_has_stable_shape() {
        let config = ThroughputConfig {
            threads: 4,
            objects: 4,
            events: 500,
            workload: WorkloadKind::PhaseShift {
                period: 64,
                shift: 1,
            },
            shard_counts: vec![2],
            seed: 1,
            repeats: 1,
        };
        let json = render_throughput_json(&measure_throughput(&config));
        for key in [
            "\"workload\": \"phase-shift\"",
            "\"threads\": 4",
            "\"events\": 500",
            "\"clock_width\":",
            "\"engines\": [",
            "\"engine\": \"sequential\"",
            "\"engine\": \"sharded\"",
            "\"events_per_sec\":",
            "\"speedup\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn uniform_64x64_is_the_acceptance_shape() {
        let c = ThroughputConfig::uniform_64x64(1_000);
        assert_eq!((c.threads, c.objects), (64, 64));
        assert_eq!(c.shard_counts, vec![1, 2, 4, 8]);
        assert_eq!(c.workload.name(), "uniform");
    }
}
