//! Engine throughput measurement: sequential vs. sharded events/second.
//!
//! The paper's figures measure clock *size*; this module measures recording
//! *speed*, split into two sections so the ingest path scales can be read
//! separately from raw stamping:
//!
//! * **`engines`** — how many events per second a timestamper stamps when
//!   driven through the unified batch path ([`mvc_core::replay`]): no
//!   ingest, no sink, pure stamping.  Comparable across PRs since PR 4.
//! * **`ingest`** — the same engines driven through the full runtime
//!   pipeline: events staged into per-thread segmented buffers, then timed
//!   through merge → [`observe_batch`](mvc_core::Timestamper::observe_batch)
//!   → the selected [`EventSink`] backend.  The sink is selectable
//!   (`--sink mem|codec|stats|conflict|reach|competitive|tee`), so egress
//!   cost — including the streaming analysis sinks' monitoring overhead —
//!   is visible too.  When a non-default sink is selected, the same
//!   interleaved timing also measures a sequential + mem-sink baseline, and
//!   the report carries the selected sink's throughput relative to it
//!   (`sink_relative_throughput`, the number CI gates on).
//! * **`wide`** — the wide-clock stamping comparison: the sequential engine
//!   in its dense row format vs. the default chunked format
//!   ([`mvc_core::StampFormat`]), driven over a clustered workload at each
//!   configured width (`--clock-width` pins one).  Each point also reports
//!   the chunked rows' nonzero-chunk occupancy and the delta-encoder
//!   transmission ratio of the produced stamps, so the speedup can be read
//!   against the sparsity that produces it.  CI gates chunked ≥ dense at
//!   width 64 and ≥ 3× dense at width 4096.
//!
//! The `mvc-eval throughput` command emits the result as JSON so successive
//! PRs can compare bench trajectories mechanically (`jq`-able, no table
//! parsing).
//!
//! Every engine sees the identical precomputed workload and the identical
//! offline-optimal component map, so the numbers isolate engine overhead:
//! routing, slice arithmetic, merge, and (for the threaded executor)
//! queue traffic.

use std::any::Any;
use std::time::Instant;

use mvc_clock::compress::DeltaEncoder;
use mvc_clock::{Component, ComponentMap};
use mvc_core::sink::{CodecSink, EventSink, MemoryRecorder, StatsSink, TeeSink};
use mvc_core::{replay, OfflineOptimizer, StampFormat, Timestamper, TimestampingEngine};
use mvc_runtime::{CompetitiveSink, ConflictSink, ReachabilityIndexSink, TraceSession};
use mvc_shard::{ShardExecutor, ShardedEngine};
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

/// The egress backend an ingest measurement drives
/// (`--sink mem|codec|stats|conflict|reach|competitive|tee`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkKind {
    /// In-memory recorder — the default, and the closest to the historical
    /// single-channel live path (interleaving + timestamps retained).
    #[default]
    Mem,
    /// Streaming codec writer: the trace persists as encoded bytes.
    Codec,
    /// Constant-memory stats counters.
    Stats,
    /// Streaming conflict flagging over consecutive-object-pair groups.
    Conflict,
    /// Streaming happened-before index over a bounded window.
    Reach,
    /// Windowed competitive-ratio tracking against the revealed optimum.
    Competitive,
    /// Tee of everything above: record, persist *and* monitor in one run.
    Tee,
}

/// The reachability window the eval harness provisions (matches the
/// pipeline's stamping window, so an in-flight batch is always queryable).
const REACH_WINDOW: usize = 4096;

impl SinkKind {
    /// Parses a CLI sink name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the candidates when the name is unknown.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "mem" => Ok(SinkKind::Mem),
            "codec" => Ok(SinkKind::Codec),
            "stats" => Ok(SinkKind::Stats),
            "conflict" => Ok(SinkKind::Conflict),
            "reach" => Ok(SinkKind::Reach),
            "competitive" => Ok(SinkKind::Competitive),
            "tee" => Ok(SinkKind::Tee),
            other => Err(format!(
                "unknown sink '{other}' (expected mem|codec|stats|conflict|reach|competitive|tee)"
            )),
        }
    }

    /// The stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            SinkKind::Mem => "mem",
            SinkKind::Codec => "codec",
            SinkKind::Stats => "stats",
            SinkKind::Conflict => "conflict",
            SinkKind::Reach => "reach",
            SinkKind::Competitive => "competitive",
            SinkKind::Tee => "tee",
        }
    }

    /// Builds a fresh sink of this kind for a workload over `objects`
    /// objects.
    ///
    /// The conflict sink declares disjoint object pairs `{2i, 2i + 1}` as
    /// its invariant groups — every object is monitored, every group is
    /// contended under the uniform workload, and each event lands in
    /// exactly one group, so the measured overhead reflects full-coverage
    /// monitoring at a realistic invariant density (overlapping groups
    /// would charge every event twice).
    pub fn build_for(self, objects: usize) -> Box<dyn EventSink> {
        let conflict = || {
            ConflictSink::with_groups(
                (0..objects / 2)
                    .map(|i| vec![mvc_trace::ObjectId(2 * i), mvc_trace::ObjectId(2 * i + 1)]),
            )
        };
        // Publish the stats sink's cells into the global registry so its
        // figures ride along in every `metrics` snapshot (latest-built
        // sink wins the names).
        let stats = || {
            let sink = StatsSink::new();
            sink.bind_metrics(mvc_obs::global());
            sink
        };
        match self {
            SinkKind::Mem => Box::new(MemoryRecorder::new()),
            SinkKind::Codec => Box::new(CodecSink::new()),
            SinkKind::Stats => Box::new(stats()),
            SinkKind::Conflict => Box::new(conflict()),
            SinkKind::Reach => Box::new(ReachabilityIndexSink::with_capacity(REACH_WINDOW)),
            SinkKind::Competitive => Box::new(CompetitiveSink::new()),
            SinkKind::Tee => Box::new(TeeSink::new(vec![
                Box::new(MemoryRecorder::new()),
                Box::new(stats()),
                Box::new(CodecSink::new()),
                Box::new(conflict()),
                Box::new(ReachabilityIndexSink::with_capacity(REACH_WINDOW)),
                Box::new(CompetitiveSink::new()),
            ])),
        }
    }
}

/// Configuration for one throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Threads in the synthetic workload.
    pub threads: usize,
    /// Objects in the synthetic workload.
    pub objects: usize,
    /// Operations to generate and stamp.
    pub events: usize,
    /// The workload family.
    pub workload: WorkloadKind,
    /// Shard counts to measure the sharded engine at.
    pub shard_counts: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
    /// Timed repetitions per engine (the best run is reported, like a
    /// benchmark's minimum — throughput noise is one-sided).
    pub repeats: usize,
    /// The egress backend the ingest section drives.
    pub sink: SinkKind,
    /// Producer clients for the loopback-TCP `net` section (0 skips it).
    pub net_clients: usize,
    /// Clock widths for the `wide` dense-vs-chunked section (empty skips
    /// it).  Each width gets its own clustered workload over `width`
    /// components, capped at 40 000 events so the widest point stays
    /// tractable.
    pub wide_widths: Vec<usize>,
}

impl ThroughputConfig {
    /// The acceptance configuration: a uniform 64-thread / 64-object stream,
    /// sharded at 1/2/4/8, with a 4-client loopback service slot.
    pub fn uniform_64x64(events: usize) -> Self {
        ThroughputConfig {
            threads: 64,
            objects: 64,
            events,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1, 2, 4, 8],
            seed: 42,
            repeats: 3,
            sink: SinkKind::Mem,
            net_clients: 4,
            wide_widths: vec![64, 4096],
        }
    }
}

/// One engine's measured throughput.
#[derive(Debug, Clone)]
pub struct EngineThroughput {
    /// `"sequential"` or `"sharded"`.
    pub engine: String,
    /// Shard count (1 for the sequential engine).
    pub shards: usize,
    /// Executor label (`"none"` for the sequential engine, otherwise
    /// `"inline"` / `"threads"`).
    pub executor: String,
    /// Best elapsed wall-clock nanoseconds over the repeats.
    pub elapsed_ns: u128,
    /// Events per second derived from the best run.
    pub events_per_sec: f64,
    /// Speedup over the sequential engine measured in the same report.
    pub speedup: f64,
}

/// Loopback-TCP service throughput: one thread-per-connection server fed by
/// N producer clients streaming the same workload, partitioned round-robin,
/// with a memory sink and no stamp return.
#[derive(Debug, Clone)]
pub struct NetThroughput {
    /// Producer clients driving the server.
    pub clients: usize,
    /// Best elapsed wall-clock nanoseconds over the repeats.
    pub elapsed_ns: u128,
    /// Events per second through the networked service.
    pub events_per_sec: f64,
    /// The sequential + mem-sink in-process ingest rate measured in the
    /// *same* interleaved run — the denominator of the CI gate.
    pub ingest_events_per_sec: f64,
    /// `events_per_sec / ingest_events_per_sec` — CI fails below 0.5.
    pub relative_to_ingest: f64,
}

/// One clock width's dense-vs-chunked stamping comparison (the `wide`
/// section): the same sequential engine and the same clustered workload,
/// timed once per [`StampFormat`] in an interleaved pair.
#[derive(Debug, Clone)]
pub struct WidePoint {
    /// The clock width (components) both engines stamped at.
    pub width: usize,
    /// Communities in the clustered workload (`width / 64`, at least 1), so
    /// each event touches roughly one 64-component chunk span.
    pub clusters: usize,
    /// Events stamped per run (the configured count, capped at 40 000).
    pub events: usize,
    /// Events per second with [`StampFormat::Dense`] rows.
    pub dense_events_per_sec: f64,
    /// Events per second with [`StampFormat::Chunked`] rows (the default).
    pub chunked_events_per_sec: f64,
    /// `chunked / dense` — the number CI gates on (≥ 0.95 at width 64,
    /// ≥ 3.0 at width 4096).
    pub speedup: f64,
    /// Mean fraction of nonzero chunks across the chunked engine's rows
    /// after the run — the sparsity the speedup comes from.
    pub chunk_occupancy: f64,
    /// Delta-encoder transmission ratio over a per-thread-encoded sample of
    /// the produced stamps (fraction of entries actually shipped; lower is
    /// sparser).
    pub transmission_ratio: f64,
}

/// The observability overhead gate: the same sequential + mem-sink ingest
/// measured twice in one interleaved run — once with the global
/// [`mvc_obs`] registry disabled (the process default) and once with every
/// instrument live.  CI fails the enabled rate below 0.95× the disabled
/// one, which is what keeps the instrumentation batch-granular.
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Events per second with the registry disabled.
    pub disabled_events_per_sec: f64,
    /// Events per second with every instrument recording.
    pub enabled_events_per_sec: f64,
    /// `enabled / disabled` — the overhead gate value.
    pub relative: f64,
}

/// The verdicts the streaming analysis sinks reached while riding the
/// ingest pipeline — surfaced in the JSON so a bench run doubles as a
/// monitoring smoke test.  Every field is `None` unless a sink of that
/// kind (directly or as a tee child) drove the run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisVerdicts {
    /// Conflict pairs the streaming [`ConflictSink`] flagged.
    pub conflict_pairs: Option<usize>,
    /// Invariant groups the conflict sink monitored.
    pub conflict_groups: Option<usize>,
    /// Events the bounded [`ReachabilityIndexSink`] evicted from its window.
    pub reach_spilled: Option<usize>,
    /// Worst online/offline ratio the [`CompetitiveSink`] observed.
    pub competitive_worst_ratio: Option<f64>,
    /// The competitive tracker's final online clock size.
    pub competitive_online_size: Option<usize>,
    /// The competitive tracker's final revealed offline optimum.
    pub competitive_offline_optimum: Option<usize>,
}

impl AnalysisVerdicts {
    fn is_empty(&self) -> bool {
        self.conflict_pairs.is_none()
            && self.reach_spilled.is_none()
            && self.competitive_worst_ratio.is_none()
    }

    /// Harvests every analysis sink reachable from `sink`, recursing into
    /// tee children.
    fn collect_from(&mut self, sink: &dyn EventSink) {
        if let Some(tee) = sink.as_any().downcast_ref::<TeeSink>() {
            for child in tee.children() {
                self.collect_from(child.as_ref());
            }
        } else if let Some(c) = sink.as_any().downcast_ref::<ConflictSink>() {
            self.conflict_pairs = Some(c.conflicts().len());
            self.conflict_groups = Some(c.group_count());
        } else if let Some(r) = sink.as_any().downcast_ref::<ReachabilityIndexSink>() {
            self.reach_spilled = Some(r.spilled());
        } else if let Some(t) = sink.as_any().downcast_ref::<CompetitiveSink>() {
            self.competitive_worst_ratio = Some(t.worst_ratio());
            self.competitive_online_size = Some(t.online_size());
            self.competitive_offline_optimum = Some(t.offline_optimum());
        }
    }
}

/// A full throughput report: workload metadata plus one row per engine in
/// each section.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The workload family name.
    pub workload: String,
    /// Threads in the workload.
    pub threads: usize,
    /// Objects in the workload.
    pub objects: usize,
    /// Events stamped per run.
    pub events: usize,
    /// Width of the offline-optimal clock all engines replayed with.
    pub clock_width: usize,
    /// The sink backend the ingest section drove.
    pub sink: String,
    /// Pure stamping (replay, no ingest/sink), sequential first.
    pub engines: Vec<EngineThroughput>,
    /// The wide-clock dense-vs-chunked section, one point per configured
    /// width (empty when `wide_widths` is).
    pub wide: Vec<WidePoint>,
    /// Full pipeline (segmented ingest → merge → stamp → sink), sequential
    /// first.  Speedups are relative to the sequential *ingest* row.
    pub ingest: Vec<EngineThroughput>,
    /// A sequential + mem-sink ingest row measured in the same interleaved
    /// run, present when the selected sink is not `mem` — the baseline the
    /// selected sink's overhead is judged against.
    pub ingest_baseline: Option<EngineThroughput>,
    /// The selected sink's sequential ingest throughput relative to the
    /// mem-sink baseline (1.0 when the selected sink *is* `mem`).  CI fails
    /// a monitoring sink below 0.5.
    pub sink_relative_throughput: f64,
    /// The streaming analysis sinks' verdicts, when the selected sink
    /// carries any (conflict / reach / competitive / tee).
    pub analysis: Option<AnalysisVerdicts>,
    /// The loopback-TCP networked-service slot, when `net_clients > 0`.
    pub net: Option<NetThroughput>,
    /// The observability overhead slot pair (disabled vs. enabled registry).
    pub obs: ObsOverhead,
    /// Registry snapshot delta captured around the instrumented overhead
    /// slots: every counter and latency histogram the pipeline recorded.
    pub metrics: mvc_obs::Snapshot,
}

/// Times one replay of `computation` through a fresh engine.
///
/// The run (engine state + every produced stamp) is returned alongside the
/// elapsed time instead of being dropped here: [`time_interleaved`] keeps it
/// alive until the *next* slot has allocated, so the allocator never trims
/// the freed pages out from under the following measurement.
fn time_one(
    mut engine: Box<dyn mvc_core::Timestamper>,
    computation: &Computation,
) -> (u128, Box<dyn Any>) {
    let start = Instant::now();
    let run = replay(engine.as_mut(), computation).expect("plan covers the workload");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(run.timestamps.len(), computation.len());
    (elapsed, Box::new(run))
}

/// Times one pass of `computation` through the full runtime pipeline with a
/// fresh engine and sink: the events are staged into per-thread segmented
/// ingest buffers (untimed — that is the producers' cost, paid on their own
/// threads in production), then the drain — order-preserving merge, bulk
/// stamping, sink delivery — is timed as one `pump`.
fn time_one_ingest(
    engine: Box<dyn mvc_core::Timestamper>,
    computation: &Computation,
    sink: Box<dyn EventSink>,
    threads: usize,
    objects: usize,
) -> (u128, Box<dyn Any>) {
    let session = TraceSession::new();
    let handles: Vec<_> = (0..threads)
        .map(|i| session.register_thread(&format!("t{i}")))
        .collect();
    let objs: Vec<_> = (0..objects)
        .map(|i| session.shared_object(&format!("o{i}"), ()))
        .collect();
    for e in computation.events() {
        objs[e.object.index()].apply(&handles[e.thread.index()], e.kind, |_| ());
    }
    let mut live = session.live_with_sink(engine, sink);
    let start = Instant::now();
    let pumped = live.pump().expect("plan covers the workload");
    let (sink, _report) = live
        .finish_into_sink()
        .map_err(|(_, e)| e)
        .expect("final drain is clean");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(pumped, computation.len());
    assert_eq!(sink.events_accepted(), computation.len());
    // The sink owns the run's stamps (for the mem backend, ~all of the
    // slot's allocation) — hand it to the harness to keep alive.
    (elapsed, Box::new(sink))
}

/// Times `engines` measurement slots `repeats` times each, interleaved
/// round-robin (one rep of each slot per round) so machine-level noise —
/// frequency scaling, noisy neighbours — hits all slots alike, and returns
/// each slot's best run (throughput noise is one-sided).  A leading untimed
/// warm-up round maps the allocator arena the stamp vectors will recycle, so
/// the timed rounds measure steady-state throughput rather than first-touch
/// page faults.
///
/// Each slot returns its product (the run's stamps) alongside its time, and
/// `keep` holds it until the *next* slot has allocated and been timed.
/// Dropping ~100 MB of uniform stamp vectors between slots would otherwise
/// let glibc consolidate and trim the arena top, and the following slot's
/// timed region would pay the page-fault storm instead of measuring the
/// engine.  The tax was asymmetric — only the slot right after the
/// still-churning sequential engine ran warm — which is exactly the
/// "1-shard fast, 2/4/8 collapse" artifact the committed bench used to
/// show.  Keeping the previous product alive turns the freed pages into an
/// interior hole the next slot reuses instead of a trimmed arena top it
/// must re-fault.
fn time_interleaved(
    engines: usize,
    repeats: usize,
    mut run_slot: impl FnMut(usize) -> (u128, Box<dyn Any>),
) -> Vec<u128> {
    let mut best = vec![u128::MAX; engines];
    let mut keep: Option<Box<dyn Any>> = None;
    for round in 0..repeats.max(1) + 1 {
        for (i, b) in best.iter_mut().enumerate() {
            let (elapsed, product) = run_slot(i);
            // Drops the previous slot's product only now, after the current
            // slot has allocated on top of it.
            keep = Some(product);
            if round > 0 {
                *b = (*b).min(elapsed);
            }
        }
    }
    drop(keep);
    best
}

fn events_per_sec(events: usize, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    events as f64 / (elapsed_ns as f64 / 1e9)
}

/// Builds the report rows for one measured section: sequential first, then
/// one sharded row per configured count, speedups relative to the
/// sequential row of the *same* section.
fn rows(config: &ThroughputConfig, executor_name: &str, timings: &[u128]) -> Vec<EngineThroughput> {
    let sequential_ns = timings[0];
    let mut out = vec![EngineThroughput {
        engine: "sequential".to_owned(),
        shards: 1,
        executor: "none".to_owned(),
        elapsed_ns: sequential_ns,
        events_per_sec: events_per_sec(config.events, sequential_ns),
        speedup: 1.0,
    }];
    for (&shards, &ns) in config.shard_counts.iter().zip(&timings[1..]) {
        out.push(EngineThroughput {
            engine: "sharded".to_owned(),
            shards,
            executor: executor_name.to_owned(),
            elapsed_ns: ns,
            events_per_sec: events_per_sec(config.events, ns),
            speedup: if ns == 0 {
                0.0
            } else {
                sequential_ns as f64 / ns as f64
            },
        });
    }
    out
}

/// Events per `observe_batch` window in the wide section: stamps are drained
/// into a reused buffer per window, so a run's live stamp memory is one
/// window (≤ 512 × width × 8 bytes) instead of the whole batch — at width
/// 4096 the difference between ~16 MB and ~1.3 GB per slot.
const WIDE_WINDOW: usize = 512;

/// Event cap for one wide point: enough for stable rates at every width,
/// small enough that the width-4096 dense slot stays in the tens of
/// milliseconds.
const WIDE_EVENT_CAP: usize = 40_000;

/// Stamps timestamped by the delta-encoder sampling pass of a wide point.
const WIDE_COMPRESSION_SAMPLE: usize = 2_000;

/// Measures one width of the `wide` section: a clustered workload over
/// `width` components (half thread components, half object components, in
/// `width / 64` communities), stamped by the sequential engine once per
/// [`StampFormat`] in an interleaved timing pair, plus an untimed chunked
/// pass for the occupancy / compression diagnostics.
fn measure_wide_point(config: &ThroughputConfig, width: usize) -> WidePoint {
    let threads = (width / 2).max(1);
    let objects = (width - threads).max(1);
    let clusters = (width / 64).max(1);
    let events = config.events.min(WIDE_EVENT_CAP);
    let computation = WorkloadBuilder::new(threads, objects)
        .operations(events)
        .kind(WorkloadKind::Clustered { clusters })
        .seed(config.seed)
        .build();
    let pairs: Vec<_> = computation.events().map(|e| (e.thread, e.object)).collect();
    // Every thread and object is a component, in id order: community `i`'s
    // components are two contiguous ranges (its threads, its objects), so a
    // row's nonzero chunks track its community, not the full width.
    let mut map = ComponentMap::new();
    for t in 0..threads {
        map.push(Component::Thread(mvc_trace::ThreadId(t)));
    }
    for o in 0..objects {
        map.push(Component::Object(mvc_trace::ObjectId(o)));
    }
    let width = map.len();

    // Slot 0 dense, slot 1 chunked; the engine (the slot's entire footprint
    // — the stamp windows are recycled) is the keepalive product.
    let timings = time_interleaved(2, config.repeats, |slot| {
        let format = if slot == 0 {
            StampFormat::Dense
        } else {
            StampFormat::Chunked
        };
        let mut engine = TimestampingEngine::with_format(map.clone(), format);
        let mut out = Vec::new();
        let start = Instant::now();
        for window in pairs.chunks(WIDE_WINDOW) {
            out.clear();
            engine
                .observe_batch(window, &mut out)
                .expect("every endpoint is a component");
        }
        let elapsed = start.elapsed().as_nanos();
        (elapsed, Box::new(engine) as Box<dyn Any>)
    });

    // Untimed diagnostics pass: occupancy needs the rows after the full
    // run; the transmission ratio samples the first stamps through one
    // delta encoder per thread (each thread's stamp stream is what a
    // distributed deployment would ship).
    let mut probe = TimestampingEngine::with_format(map.clone(), StampFormat::Chunked);
    let mut encoders: Vec<DeltaEncoder> = (0..threads).map(|_| DeltaEncoder::new()).collect();
    let mut encoded = 0usize;
    let mut out = Vec::new();
    for window in pairs.chunks(WIDE_WINDOW) {
        out.clear();
        probe
            .observe_batch(window, &mut out)
            .expect("every endpoint is a component");
        for (&(thread, _), stamp) in window.iter().zip(&out) {
            if encoded >= WIDE_COMPRESSION_SAMPLE {
                break;
            }
            encoders[thread.index()].encode(stamp);
            encoded += 1;
        }
    }
    let (full, delta) = encoders.iter().fold((0usize, 0usize), |(f, d), e| {
        let s = e.stats();
        (f + s.full_entries, d + s.delta_entries)
    });
    let transmission_ratio = if full == 0 {
        1.0
    } else {
        delta as f64 / full as f64
    };
    let chunk_occupancy = probe.chunk_occupancy().unwrap_or(1.0);

    WidePoint {
        width,
        clusters,
        events,
        dense_events_per_sec: events_per_sec(events, timings[0]),
        chunked_events_per_sec: events_per_sec(events, timings[1]),
        speedup: if timings[1] == 0 {
            0.0
        } else {
            timings[0] as f64 / timings[1] as f64
        },
        chunk_occupancy,
        transmission_ratio,
    }
}

/// Measures the sequential engine and the sharded engine (at every
/// configured shard count) over the same workload and component map — once
/// through the pure stamping path and once through the full ingest → stamp
/// → sink pipeline with the configured sink backend.
pub fn measure_throughput(config: &ThroughputConfig) -> ThroughputReport {
    let computation = WorkloadBuilder::new(config.threads, config.objects)
        .operations(config.events)
        .kind(config.workload)
        .seed(config.seed)
        .build();
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);
    let map = plan.components().clone();

    let executor = ShardExecutor::auto();
    let executor_name = match executor {
        ShardExecutor::Inline => "inline",
        ShardExecutor::Threads => "threads",
    };
    // Slot 0 is the sequential engine, slot k the k-th shard count.
    let make_engine = |slot: usize| -> Box<dyn mvc_core::Timestamper> {
        if slot == 0 {
            Box::new(TimestampingEngine::with_components(map.clone()))
        } else {
            Box::new(ShardedEngine::with_executor(
                map.clone(),
                config.shard_counts[slot - 1],
                executor,
            ))
        }
    };
    let slots = 1 + config.shard_counts.len();

    let stamping = time_interleaved(slots, config.repeats, |slot| {
        time_one(make_engine(slot), &computation)
    });
    let wide = config
        .wide_widths
        .iter()
        .map(|&w| measure_wide_point(config, w))
        .collect();
    // When the selected sink is not `mem`, one extra slot measures the
    // sequential engine through a mem sink in the *same* interleaved run —
    // the baseline `sink_relative_throughput` (and the CI overhead gate)
    // compares against.
    let baseline_slots = usize::from(config.sink != SinkKind::Mem);
    let pipeline = time_interleaved(slots + baseline_slots, config.repeats, |slot| {
        // The extra trailing slot is sequential + mem; every other slot
        // drives the selected sink.
        let (engine_slot, sink) = if slot < slots {
            (slot, config.sink)
        } else {
            (0, SinkKind::Mem)
        };
        time_one_ingest(
            make_engine(engine_slot),
            &computation,
            sink.build_for(config.objects),
            config.threads,
            config.objects,
        )
    });
    let ingest = rows(config, executor_name, &pipeline[..slots]);
    let ingest_baseline = (baseline_slots == 1).then(|| EngineThroughput {
        engine: "sequential".to_owned(),
        shards: 1,
        executor: "none".to_owned(),
        elapsed_ns: pipeline[slots],
        events_per_sec: events_per_sec(config.events, pipeline[slots]),
        speedup: 1.0,
    });
    let sink_relative_throughput = match &ingest_baseline {
        None => 1.0,
        Some(baseline) => {
            if ingest[0].elapsed_ns == 0 {
                0.0
            } else {
                baseline.elapsed_ns as f64 / ingest[0].elapsed_ns as f64
            }
        }
    };

    // One untimed pass harvests the analysis sinks' verdicts when the
    // selected backend carries any — the timed slots drop their sinks, and
    // the verdicts must come from a complete run, not the best-timed one.
    let analysis = matches!(
        config.sink,
        SinkKind::Conflict | SinkKind::Reach | SinkKind::Competitive | SinkKind::Tee
    )
    .then(|| {
        let (_, product) = time_one_ingest(
            make_engine(0),
            &computation,
            config.sink.build_for(config.objects),
            config.threads,
            config.objects,
        );
        let sink = product
            .downcast::<Box<dyn EventSink>>()
            .expect("the ingest product is the sink");
        let mut verdicts = AnalysisVerdicts::default();
        verdicts.collect_from(sink.as_ref().as_ref());
        verdicts
    })
    .filter(|v| !v.is_empty());

    // The loopback-TCP service slot, interleaved with its own sequential +
    // mem-sink in-process baseline so machine noise hits both alike.  The
    // service run schedules ~2x`net_clients` threads on whatever cores the
    // machine has, so its best-of converges slower than the single-threaded
    // slots — give the pair extra repeats when the configured count is low.
    let net = (config.net_clients > 0).then(|| {
        let net_repeats = if config.repeats > 1 {
            config.repeats.max(5)
        } else {
            config.repeats
        };
        let timings = time_interleaved(2, net_repeats, |slot| {
            if slot == 0 {
                time_one_ingest(
                    Box::new(TimestampingEngine::with_components(map.clone())),
                    &computation,
                    SinkKind::Mem.build_for(config.objects),
                    config.threads,
                    config.objects,
                )
            } else {
                crate::serve::time_one_net(
                    &computation,
                    config.threads,
                    config.objects,
                    config.net_clients,
                )
            }
        });
        NetThroughput {
            clients: config.net_clients,
            elapsed_ns: timings[1],
            events_per_sec: events_per_sec(config.events, timings[1]),
            ingest_events_per_sec: events_per_sec(config.events, timings[0]),
            relative_to_ingest: if timings[1] == 0 {
                0.0
            } else {
                timings[0] as f64 / timings[1] as f64
            },
        }
    });

    // The observability overhead pair: the identical sequential + mem-sink
    // ingest, slot 0 with the global registry disabled and slot 1 with it
    // enabled, interleaved so machine noise hits both alike.  Each slot
    // sets the switch itself (and drops back to disabled on exit) so the
    // main sections above always measure the uninstrumented rate.  The
    // registry delta around the run becomes the report's `metrics` section.
    let registry = mvc_obs::global();
    let was_enabled = registry.enabled();
    let before = registry.snapshot();
    let obs_timings = time_interleaved(2, config.repeats, |slot| {
        registry.set_enabled(slot == 1);
        let result = time_one_ingest(
            Box::new(TimestampingEngine::with_components(map.clone())),
            &computation,
            SinkKind::Mem.build_for(config.objects),
            config.threads,
            config.objects,
        );
        registry.set_enabled(false);
        result
    });
    registry.set_enabled(was_enabled);
    let metrics = registry.snapshot().delta(&before);
    let obs = ObsOverhead {
        disabled_events_per_sec: events_per_sec(config.events, obs_timings[0]),
        enabled_events_per_sec: events_per_sec(config.events, obs_timings[1]),
        relative: if obs_timings[1] == 0 {
            0.0
        } else {
            obs_timings[0] as f64 / obs_timings[1] as f64
        },
    };

    ThroughputReport {
        workload: config.workload.name().to_owned(),
        threads: config.threads,
        objects: config.objects,
        events: config.events,
        clock_width: map.len(),
        sink: config.sink.name().to_owned(),
        engines: rows(config, executor_name, &stamping),
        wide,
        ingest,
        ingest_baseline,
        sink_relative_throughput,
        analysis,
        net,
        obs,
        metrics,
    }
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        "null".to_owned()
    }
}

fn render_row(out: &mut String, e: &EngineThroughput) {
    out.push('{');
    out.push_str(&format!("\"engine\": \"{}\", ", e.engine));
    out.push_str(&format!("\"shards\": {}, ", e.shards));
    out.push_str(&format!("\"executor\": \"{}\", ", e.executor));
    out.push_str(&format!("\"elapsed_ns\": {}, ", e.elapsed_ns));
    out.push_str(&format!(
        "\"events_per_sec\": {}, ",
        json_f64(e.events_per_sec)
    ));
    out.push_str(&format!("\"speedup\": {}", json_f64(e.speedup)));
    out.push('}');
}

fn render_rows(out: &mut String, key: &str, rows: &[EngineThroughput], trailing_comma: bool) {
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, e) in rows.iter().enumerate() {
        out.push_str("    ");
        render_row(out, e);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]");
    if trailing_comma {
        out.push(',');
    }
    out.push('\n');
}

/// Renders a report as a single JSON object (two-space indent, stable key
/// order) — the machine-readable output of `mvc-eval throughput`.
pub fn render_throughput_json(report: &ThroughputReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", report.workload));
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str(&format!("  \"objects\": {},\n", report.objects));
    out.push_str(&format!("  \"events\": {},\n", report.events));
    out.push_str(&format!("  \"clock_width\": {},\n", report.clock_width));
    out.push_str(&format!("  \"sink\": \"{}\",\n", report.sink));
    render_rows(&mut out, "engines", &report.engines, true);
    out.push_str("  \"wide\": [\n");
    for (i, p) in report.wide.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"width\": {}, ", p.width));
        out.push_str(&format!("\"clusters\": {}, ", p.clusters));
        out.push_str(&format!("\"events\": {}, ", p.events));
        out.push_str(&format!(
            "\"dense_events_per_sec\": {}, ",
            json_f64(p.dense_events_per_sec)
        ));
        out.push_str(&format!(
            "\"chunked_events_per_sec\": {}, ",
            json_f64(p.chunked_events_per_sec)
        ));
        // Four decimals: the CI gates compare this against 0.95 and 3.0.
        out.push_str(&format!(
            "\"speedup\": {}, ",
            if p.speedup.is_finite() {
                format!("{:.4}", p.speedup)
            } else {
                "null".to_owned()
            }
        ));
        out.push_str(&format!(
            "\"chunk_occupancy\": {}, ",
            if p.chunk_occupancy.is_finite() {
                format!("{:.4}", p.chunk_occupancy)
            } else {
                "null".to_owned()
            }
        ));
        out.push_str(&format!(
            "\"transmission_ratio\": {}",
            if p.transmission_ratio.is_finite() {
                format!("{:.4}", p.transmission_ratio)
            } else {
                "null".to_owned()
            }
        ));
        out.push('}');
        if i + 1 < report.wide.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    render_rows(&mut out, "ingest", &report.ingest, true);
    out.push_str("  \"ingest_baseline\": ");
    match &report.ingest_baseline {
        None => out.push_str("null"),
        Some(row) => render_row(&mut out, row),
    }
    out.push_str(",\n");
    out.push_str("  \"analysis\": ");
    match &report.analysis {
        None => out.push_str("null"),
        Some(v) => {
            let opt_usize = |v: &Option<usize>| match v {
                None => "null".to_owned(),
                Some(n) => n.to_string(),
            };
            let opt_f64 = |v: &Option<f64>| match v {
                None => "null".to_owned(),
                Some(x) => json_f64(*x),
            };
            out.push('{');
            out.push_str(&format!(
                "\"conflict_pairs\": {}, ",
                opt_usize(&v.conflict_pairs)
            ));
            out.push_str(&format!(
                "\"conflict_groups\": {}, ",
                opt_usize(&v.conflict_groups)
            ));
            out.push_str(&format!(
                "\"reach_spilled\": {}, ",
                opt_usize(&v.reach_spilled)
            ));
            out.push_str(&format!(
                "\"competitive_worst_ratio\": {}, ",
                opt_f64(&v.competitive_worst_ratio)
            ));
            out.push_str(&format!(
                "\"competitive_online_size\": {}, ",
                opt_usize(&v.competitive_online_size)
            ));
            out.push_str(&format!(
                "\"competitive_offline_optimum\": {}",
                opt_usize(&v.competitive_offline_optimum)
            ));
            out.push('}');
        }
    }
    out.push_str(",\n");
    out.push_str("  \"net\": ");
    match &report.net {
        None => out.push_str("null"),
        Some(net) => {
            out.push('{');
            out.push_str(&format!("\"clients\": {}, ", net.clients));
            out.push_str(&format!("\"elapsed_ns\": {}, ", net.elapsed_ns));
            out.push_str(&format!(
                "\"events_per_sec\": {}, ",
                json_f64(net.events_per_sec)
            ));
            out.push_str(&format!(
                "\"ingest_events_per_sec\": {}, ",
                json_f64(net.ingest_events_per_sec)
            ));
            // Four decimals: the CI gate compares this against 0.5, and two
            // would round 0.498 up to the threshold.
            out.push_str(&format!(
                "\"relative_to_ingest\": {}",
                if net.relative_to_ingest.is_finite() {
                    format!("{:.4}", net.relative_to_ingest)
                } else {
                    "null".to_owned()
                }
            ));
            out.push('}');
        }
    }
    out.push_str(",\n");
    out.push_str("  \"obs\": {");
    out.push_str(&format!(
        "\"disabled_events_per_sec\": {}, ",
        json_f64(report.obs.disabled_events_per_sec)
    ));
    out.push_str(&format!(
        "\"enabled_events_per_sec\": {}, ",
        json_f64(report.obs.enabled_events_per_sec)
    ));
    // Four decimals: the CI overhead gate compares this against 0.95, and
    // two would round 0.9489 up to the threshold.
    out.push_str(&format!(
        "\"relative\": {}",
        if report.obs.relative.is_finite() {
            format!("{:.4}", report.obs.relative)
        } else {
            "null".to_owned()
        }
    ));
    out.push_str("},\n");
    out.push_str(&format!("  \"metrics\": {},\n", report.metrics.to_json()));
    out.push_str(&format!(
        "  \"sink_relative_throughput\": {}\n",
        json_f64(report.sink_relative_throughput)
    ));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_configured_engine() {
        let config = ThroughputConfig {
            threads: 8,
            objects: 8,
            events: 2_000,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1, 2],
            seed: 3,
            repeats: 1,
            sink: SinkKind::Mem,
            net_clients: 0,
            wide_widths: vec![],
        };
        let report = measure_throughput(&config);
        for section in [&report.engines, &report.ingest] {
            assert_eq!(section.len(), 3);
            assert_eq!(section[0].engine, "sequential");
            assert_eq!(section[0].speedup, 1.0);
            assert_eq!(section[1].shards, 1);
            assert_eq!(section[2].shards, 2);
            for e in section.iter() {
                assert!(e.events_per_sec > 0.0, "{}: zero throughput", e.engine);
            }
        }
        assert!(report.clock_width > 0);
        assert_eq!(report.sink, "mem");
        assert!(report.ingest_baseline.is_none(), "mem is its own baseline");
        assert_eq!(report.sink_relative_throughput, 1.0);
        assert!(report.obs.disabled_events_per_sec > 0.0);
        assert!(report.obs.enabled_events_per_sec > 0.0);
        assert!(report.obs.relative > 0.0);
        // The instrumented slot drove the full pipeline: the delta
        // snapshot carries its counters.  Lower bound only — sibling tests
        // in this process share the global registry, and the enabled slot
        // runs once per round (warm-up included).
        let accepted = report
            .metrics
            .counter("pipeline.events_accepted")
            .expect("the enabled slot registered pipeline counters");
        assert!(accepted >= 2_000, "at least one enabled pass: {accepted}");
        let stamp = report
            .metrics
            .histogram("pipeline.stamp_ns")
            .expect("stamp latency histogram");
        assert!(stamp.count > 0);
    }

    #[test]
    fn every_sink_backend_drives_the_ingest_section() {
        for sink in [
            SinkKind::Mem,
            SinkKind::Codec,
            SinkKind::Stats,
            SinkKind::Conflict,
            SinkKind::Reach,
            SinkKind::Competitive,
            SinkKind::Tee,
        ] {
            let config = ThroughputConfig {
                threads: 4,
                objects: 4,
                events: 400,
                workload: WorkloadKind::Uniform,
                shard_counts: vec![2],
                seed: 9,
                repeats: 1,
                sink,
                net_clients: 0,
                wide_widths: vec![],
            };
            let report = measure_throughput(&config);
            assert_eq!(report.sink, sink.name());
            assert_eq!(report.ingest.len(), 2);
            for e in &report.ingest {
                assert!(e.events_per_sec > 0.0, "{}: zero throughput", e.engine);
            }
            if sink == SinkKind::Mem {
                assert!(report.ingest_baseline.is_none());
                assert_eq!(report.sink_relative_throughput, 1.0);
            } else {
                let baseline = report.ingest_baseline.as_ref().unwrap();
                assert_eq!(baseline.engine, "sequential");
                assert!(baseline.events_per_sec > 0.0);
                assert!(report.sink_relative_throughput > 0.0);
            }
        }
    }

    #[test]
    fn wide_section_measures_dense_and_chunked() {
        let config = ThroughputConfig {
            threads: 8,
            objects: 8,
            events: 3_000,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1],
            seed: 3,
            repeats: 1,
            sink: SinkKind::Mem,
            net_clients: 0,
            wide_widths: vec![64, 256],
        };
        let report = measure_throughput(&config);
        assert_eq!(report.wide.len(), 2);
        let p = &report.wide[0];
        assert_eq!(p.width, 64);
        assert_eq!(p.clusters, 1, "width 64 is a single community");
        assert_eq!(p.events, 3_000);
        assert!(p.dense_events_per_sec > 0.0);
        assert!(p.chunked_events_per_sec > 0.0);
        assert!(p.speedup > 0.0);
        assert!(p.chunk_occupancy > 0.0 && p.chunk_occupancy <= 1.0);
        assert!(p.transmission_ratio > 0.0 && p.transmission_ratio <= 1.0);
        let q = &report.wide[1];
        assert_eq!(q.width, 256);
        assert_eq!(q.clusters, 4);
        // Clustered events confine each row to its community's chunk span,
        // so wide rows stay sparse — the effect the section exists to show.
        assert!(
            q.chunk_occupancy < p.chunk_occupancy,
            "width 256 occupancy {} should undercut width 64's {}",
            q.chunk_occupancy,
            p.chunk_occupancy
        );
    }

    #[test]
    fn sink_names_parse_and_round_trip() {
        for name in [
            "mem",
            "codec",
            "stats",
            "conflict",
            "reach",
            "competitive",
            "tee",
        ] {
            assert_eq!(SinkKind::parse(name).unwrap().name(), name);
        }
        let err = SinkKind::parse("paper").unwrap_err();
        assert!(err.contains("unknown sink 'paper'"));
        assert!(
            err.contains("mem|codec|stats|conflict|reach|competitive|tee"),
            "lists candidates"
        );
        assert_eq!(SinkKind::default(), SinkKind::Mem);
    }

    #[test]
    fn analysis_sinks_produce_their_analysis_during_ingest() {
        // The conflict sink must actually flag something on a contended
        // workload, not just count events — drive one ingest run by hand.
        let config = ThroughputConfig {
            threads: 8,
            objects: 8,
            events: 800,
            workload: WorkloadKind::Uniform,
            shard_counts: vec![1],
            seed: 7,
            repeats: 1,
            sink: SinkKind::Conflict,
            net_clients: 0,
            wide_widths: vec![],
        };
        let sink = SinkKind::Conflict.build_for(config.objects);
        let conflict = sink.as_any().downcast_ref::<ConflictSink>().unwrap();
        assert_eq!(conflict.group_count(), 4, "disjoint object pairs");
        let report = measure_throughput(&config);
        assert!(report.sink_relative_throughput > 0.0);
    }

    #[test]
    fn json_has_stable_shape() {
        let config = ThroughputConfig {
            threads: 4,
            objects: 4,
            events: 500,
            workload: WorkloadKind::PhaseShift {
                period: 64,
                shift: 1,
            },
            shard_counts: vec![2],
            seed: 1,
            repeats: 1,
            sink: SinkKind::Tee,
            net_clients: 0,
            wide_widths: vec![64],
        };
        let json = render_throughput_json(&measure_throughput(&config));
        for key in [
            "\"workload\": \"phase-shift\"",
            "\"threads\": 4",
            "\"events\": 500",
            "\"clock_width\":",
            "\"sink\": \"tee\"",
            "\"engines\": [",
            "\"wide\": [",
            "\"width\": 64",
            "\"dense_events_per_sec\":",
            "\"chunked_events_per_sec\":",
            "\"chunk_occupancy\":",
            "\"transmission_ratio\":",
            "\"ingest\": [",
            "\"engine\": \"sequential\"",
            "\"engine\": \"sharded\"",
            "\"events_per_sec\":",
            "\"speedup\":",
            "\"ingest_baseline\": {",
            "\"sink_relative_throughput\":",
            "\"obs\": {",
            "\"disabled_events_per_sec\":",
            "\"enabled_events_per_sec\":",
            "\"relative\":",
            "\"metrics\": {",
            "\"pipeline.events_accepted\":",
            "\"pipeline.stamp_ns\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));

        // With the default mem sink the baseline is null.
        let mem = ThroughputConfig {
            sink: SinkKind::Mem,
            ..ThroughputConfig::uniform_64x64(200)
        };
        let json = render_throughput_json(&measure_throughput(&mem));
        assert!(json.contains("\"ingest_baseline\": null"));
        assert!(json.contains("\"sink_relative_throughput\": 1.00"));
    }

    #[test]
    fn uniform_64x64_is_the_acceptance_shape() {
        let c = ThroughputConfig::uniform_64x64(1_000);
        assert_eq!((c.threads, c.objects), (64, 64));
        assert_eq!(c.shard_counts, vec![1, 2, 4, 8]);
        assert_eq!(c.workload.name(), "uniform");
        assert_eq!(c.sink, SinkKind::Mem);
    }
}
