//! Low-level experiment runner: one (algorithm, graph configuration) pair at
//! a time, averaged over seeds.
//!
//! Online mechanisms are not enumerated as concrete types anywhere in the
//! harness: [`AlgorithmKind::Online`] carries a mechanism *name* that is
//! resolved through the [`MechanismRegistry`] at run time, so adding a
//! mechanism to the registry makes it sweepable here, in the `mvc_eval`
//! binary and in the benchmarks without touching any of them.

use serde::{Deserialize, Serialize};

use mvc_core::OfflineOptimizer;
use mvc_graph::{GraphScenario, RandomGraphBuilder};
use mvc_online::{simulate_final_size, MechanismRegistry};

/// Which clock-size algorithm a data point measures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The paper's Naive baseline with one component per thread of the
    /// *system*, allocated up front ("a vector clock with size equal to the
    /// number of threads … for all computations") — its size does not depend
    /// on the revealed graph.  (The registry's lazily-growing
    /// `naive-threads` only materialises components for *active* threads;
    /// that refinement would only make the baseline look better than the
    /// paper's.)
    NaiveThreads,
    /// The object-side upfront baseline: one component per object.
    NaiveObjects,
    /// Offline optimal: minimum vertex cover via Algorithm 1.
    OfflineOptimal,
    /// Any [`MechanismRegistry`] mechanism, replayed over the reveal stream
    /// and resolved by name when the point is measured.
    Online(String),
}

impl AlgorithmKind {
    /// An online algorithm driven by the named registry mechanism.
    pub fn online(mechanism: impl Into<String>) -> Self {
        AlgorithmKind::Online(mechanism.into())
    }

    /// Stable display name (used in table headers and CSV columns).
    pub fn name(&self) -> &str {
        match self {
            AlgorithmKind::NaiveThreads => "naive",
            AlgorithmKind::NaiveObjects => "naive-objects",
            AlgorithmKind::OfflineOptimal => "offline-optimal",
            AlgorithmKind::Online(mechanism) => mechanism,
        }
    }
}

/// Configuration of a single measured point: a graph family plus an
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Threads (left side) per graph.
    pub threads: usize,
    /// Objects (right side) per graph.
    pub objects: usize,
    /// Target edge density.
    pub density: f64,
    /// Uniform or nonuniform generation.
    pub scenario: GraphScenario,
    /// Number of independent seeds to average over.
    pub trials: usize,
}

impl SweepConfig {
    /// The paper's first setting: 50 threads, 50 objects.
    pub fn fifty_by_fifty(density: f64, scenario: GraphScenario, trials: usize) -> Self {
        Self {
            threads: 50,
            objects: 50,
            density,
            scenario,
            trials,
        }
    }
}

/// One averaged measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// The value swept on the x axis (density or node count, set by the
    /// figure driver).
    pub x: f64,
    /// Mean final clock size over the trials.
    pub mean_size: f64,
    /// Minimum observed size.
    pub min_size: usize,
    /// Maximum observed size.
    pub max_size: usize,
}

/// Derives the mechanism seed from the workload/graph seed so that trials
/// are independent but reproducible.
pub(crate) fn mechanism_seed(graph_seed: u64) -> u64 {
    graph_seed.wrapping_mul(0x9E37_79B9) ^ 0xA5A5
}

/// Measures the final clock size of `algorithm` on one random graph drawn
/// with `seed`.
///
/// # Panics
///
/// Panics when an [`AlgorithmKind::Online`] name is not in the
/// [`MechanismRegistry`]; callers exposing user-supplied names should
/// validate them with [`MechanismRegistry::from_name`] first (the `mvc_eval`
/// binary does).
pub fn single_run(config: &SweepConfig, algorithm: &AlgorithmKind, seed: u64) -> usize {
    let builder = RandomGraphBuilder::new(config.threads, config.objects)
        .density(config.density)
        .scenario(config.scenario)
        .seed(seed);
    match algorithm {
        AlgorithmKind::OfflineOptimal => {
            // Borrow path: no clone / ownership transfer of the graph just
            // to read the optimal clock size.
            let graph = builder.build();
            OfflineOptimizer::new().solve(&graph).clock_size()
        }
        AlgorithmKind::NaiveThreads => config.threads,
        AlgorithmKind::NaiveObjects => config.objects,
        AlgorithmKind::Online(mechanism) => {
            let (_, stream) = builder.build_edge_stream();
            let mut mechanism = MechanismRegistry::new()
                .seed(mechanism_seed(seed))
                .from_name(mechanism)
                .unwrap_or_else(|e| panic!("{e}"));
            simulate_final_size(mechanism.as_mut(), &stream)
        }
    }
}

/// Averages [`single_run`] over `config.trials` seeds (seeds `0..trials`
/// offset by a per-algorithm stride so different algorithms see the same
/// graphs).
pub fn average_size(config: &SweepConfig, algorithm: &AlgorithmKind, x: f64) -> DataPoint {
    assert!(config.trials > 0, "at least one trial is required");
    let mut total = 0usize;
    let mut min_size = usize::MAX;
    let mut max_size = 0usize;
    for trial in 0..config.trials {
        let size = single_run(config, algorithm, trial as u64);
        total += size;
        min_size = min_size.min(size);
        max_size = max_size.max(size);
    }
    DataPoint {
        x,
        mean_size: total as f64 / config.trials as f64,
        min_size,
        max_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(density: f64, trials: usize) -> SweepConfig {
        SweepConfig::fifty_by_fifty(density, GraphScenario::Uniform, trials)
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(AlgorithmKind::NaiveThreads.name(), "naive");
        assert_eq!(AlgorithmKind::OfflineOptimal.name(), "offline-optimal");
        assert_eq!(AlgorithmKind::online("adaptive").name(), "adaptive");
        assert_eq!(AlgorithmKind::online("popularity").name(), "popularity");
    }

    #[test]
    fn single_run_is_deterministic() {
        let c = cfg(0.05, 1);
        for alg in [
            AlgorithmKind::NaiveThreads,
            AlgorithmKind::online("random"),
            AlgorithmKind::online("popularity"),
            AlgorithmKind::online("adaptive"),
            AlgorithmKind::OfflineOptimal,
        ] {
            assert_eq!(single_run(&c, &alg, 3), single_run(&c, &alg, 3), "{alg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown mechanism")]
    fn unknown_online_name_panics_with_candidates() {
        let c = cfg(0.05, 1);
        let _ = single_run(&c, &AlgorithmKind::online("gradient-descent"), 0);
    }

    #[test]
    fn offline_never_exceeds_online() {
        let c = cfg(0.05, 1);
        for seed in 0..5 {
            let offline = single_run(&c, &AlgorithmKind::OfflineOptimal, seed);
            for alg in [
                AlgorithmKind::NaiveThreads,
                AlgorithmKind::NaiveObjects,
                AlgorithmKind::online("random"),
                AlgorithmKind::online("popularity"),
                AlgorithmKind::online("adaptive"),
            ] {
                assert!(
                    single_run(&c, &alg, seed) >= offline,
                    "{alg:?} beat the offline optimum at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn naive_threads_is_bounded_by_thread_count() {
        let c = cfg(0.3, 1);
        for seed in 0..3 {
            assert!(single_run(&c, &AlgorithmKind::NaiveThreads, seed) <= 50);
        }
    }

    #[test]
    fn registry_naive_never_exceeds_the_upfront_baseline() {
        // The registry's lazily-growing naive-threads only pays for active
        // threads, so it can only undercut the paper's upfront baseline.
        let c = cfg(0.02, 1);
        for seed in 0..3 {
            let lazy = single_run(&c, &AlgorithmKind::online("naive-threads"), seed);
            let upfront = single_run(&c, &AlgorithmKind::NaiveThreads, seed);
            assert!(lazy <= upfront, "lazy {lazy} vs upfront {upfront}");
        }
    }

    #[test]
    fn average_aggregates_min_mean_max() {
        let c = cfg(0.05, 5);
        let p = average_size(&c, &AlgorithmKind::online("popularity"), 0.05);
        assert_eq!(p.x, 0.05);
        assert!(p.min_size as f64 <= p.mean_size);
        assert!(p.mean_size <= p.max_size as f64);
        assert!(p.max_size <= 100);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let c = cfg(0.05, 0);
        let _ = average_size(&c, &AlgorithmKind::online("popularity"), 0.0);
    }

    #[test]
    fn popularity_beats_naive_on_sparse_nonuniform_graphs() {
        // The paper's headline online result: at low density, Popularity and
        // Random produce significantly smaller clocks than Naive, especially
        // in the Nonuniform scenario.
        let c = SweepConfig::fifty_by_fifty(0.03, GraphScenario::default_nonuniform(), 10);
        let pop = average_size(&c, &AlgorithmKind::online("popularity"), 0.03);
        let naive = average_size(&c, &AlgorithmKind::NaiveThreads, 0.03);
        assert!(
            pop.mean_size < naive.mean_size,
            "popularity {} should beat naive {} on sparse nonuniform graphs",
            pop.mean_size,
            naive.mean_size
        );
    }
}
