//! Rendering experiment results as aligned text tables and CSV.

use std::fmt::Write as _;

use crate::experiments::FigureData;

/// Renders a figure as an aligned, human-readable table (one row per x value,
/// one column per series).
pub fn render_table(figure: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", figure.id, figure.title);
    let xs = figure.x_values();
    let mut headers = vec![figure.x_label.clone()];
    headers.extend(figure.series.iter().map(|s| s.name.clone()));

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(xs.len());
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![format_x(*x)];
        for s in &figure.series {
            let cell = s
                .points
                .get(i)
                .map(|p| format!("{:.2}", p.mean_size))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        rows.push(row);
    }

    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(col, h)| {
            rows.iter()
                .map(|r| r[col].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders a figure as CSV: `x,series1,series2,...` with one row per x value.
pub fn render_csv(figure: &FigureData) -> String {
    let mut out = String::new();
    let mut header = vec![figure.x_label.replace(',', ";")];
    header.extend(figure.series.iter().map(|s| s.name.replace(',', ";")));
    let _ = writeln!(out, "{}", header.join(","));
    let xs = figure.x_values();
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![format_x(*x)];
        for s in &figure.series {
            row.push(
                s.points
                    .get(i)
                    .map(|p| format!("{:.4}", p.mean_size))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

fn format_x(x: f64) -> String {
    if (x.fract()).abs() < 1e-9 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{FigureData, Series};
    use crate::runner::DataPoint;

    fn tiny_figure() -> FigureData {
        let mk = |name: &str, sizes: &[f64]| Series {
            name: name.into(),
            points: sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| DataPoint {
                    x: (i + 1) as f64 * 0.5,
                    mean_size: s,
                    min_size: s as usize,
                    max_size: s as usize,
                })
                .collect(),
        };
        FigureData {
            id: "figX".into(),
            title: "tiny".into(),
            x_label: "density".into(),
            y_label: "size".into(),
            series: vec![mk("naive", &[10.0, 12.0]), mk("popularity", &[4.0, 9.0])],
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = render_table(&tiny_figure());
        assert!(t.contains("# figX — tiny"));
        assert!(t.contains("density"));
        assert!(t.contains("naive"));
        assert!(t.contains("popularity"));
        assert!(t.contains("10.00"));
        assert!(t.contains("4.00"));
        // Two data rows plus header and separator.
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn csv_has_one_row_per_x() {
        let csv = render_csv(&tiny_figure());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "density,naive,popularity");
        assert!(lines[1].starts_with("0.5,10.0000,4.0000"));
        assert!(lines[2].starts_with("1,12.0000,9.0000"));
    }

    #[test]
    fn integer_x_values_render_without_decimals() {
        assert_eq!(format_x(50.0), "50");
        assert_eq!(format_x(0.05), "0.05");
    }

    #[test]
    fn empty_figure_renders_without_panicking() {
        let f = FigureData {
            id: "empty".into(),
            title: "no data".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(render_table(&f).contains("empty"));
        assert_eq!(render_csv(&f).lines().count(), 1);
    }
}
