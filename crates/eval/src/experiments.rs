//! Figure drivers: one function per figure of the paper's evaluation.

use serde::{Deserialize, Serialize};

use mvc_graph::GraphScenario;

use crate::runner::{average_size, AlgorithmKind, DataPoint, SweepConfig};

/// One line of a figure: an algorithm (and scenario) with its measured
/// points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name, e.g. `"popularity (nonuniform)"`.
    pub name: String,
    /// Measured points, in x order.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// The mean size at the given x value, if that x was measured.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.mean_size)
    }
}

/// A complete reproduced figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the swept x axis.
    pub x_label: String,
    /// Label of the y axis (always a clock size here).
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The x values of the first series (all series share the same sweep).
    pub fn x_values(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default()
    }
}

/// Densities swept by the density figures (Figures 4 and 6).
pub const DENSITY_SWEEP: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9];

/// Node counts per side swept by the size figures (Figures 5 and 7).
pub const NODE_SWEEP: &[usize] = &[10, 20, 30, 40, 50, 70, 90, 110, 130, 150];

/// Density used by the node-count figures (matches the paper).
pub const FIXED_DENSITY: f64 = 0.05;

/// Nodes per side used by the density figures (matches the paper).
pub const FIXED_NODES: usize = 50;

fn scenario_label(scenario: GraphScenario) -> &'static str {
    scenario.name()
}

fn density_sweep_series(
    algorithms: &[AlgorithmKind],
    scenarios: &[GraphScenario],
    trials: usize,
) -> Vec<Series> {
    let mut series = Vec::new();
    for &scenario in scenarios {
        for &alg in algorithms {
            let points = DENSITY_SWEEP
                .iter()
                .map(|&density| {
                    let cfg = SweepConfig {
                        threads: FIXED_NODES,
                        objects: FIXED_NODES,
                        density,
                        scenario,
                        trials,
                    };
                    average_size(&cfg, alg, density)
                })
                .collect();
            series.push(Series {
                name: format!("{} ({})", alg.name(), scenario_label(scenario)),
                points,
            });
        }
    }
    series
}

fn node_sweep_series(
    algorithms: &[AlgorithmKind],
    scenarios: &[GraphScenario],
    trials: usize,
) -> Vec<Series> {
    let mut series = Vec::new();
    for &scenario in scenarios {
        for &alg in algorithms {
            let points = NODE_SWEEP
                .iter()
                .map(|&nodes| {
                    let cfg = SweepConfig {
                        threads: nodes,
                        objects: nodes,
                        density: FIXED_DENSITY,
                        scenario,
                        trials,
                    };
                    average_size(&cfg, alg, nodes as f64)
                })
                .collect();
            series.push(Series {
                name: format!("{} ({})", alg.name(), scenario_label(scenario)),
                points,
            });
        }
    }
    series
}

/// Figure 4: final clock size of the three online mechanisms as graph density
/// increases (50 threads + 50 objects, Uniform and Nonuniform scenarios).
pub fn fig4(trials: usize) -> FigureData {
    FigureData {
        id: "fig4".into(),
        title: "Vector size vs. graph density (online mechanisms, 50+50 nodes)".into(),
        x_label: "graph density".into(),
        y_label: "final vector clock size".into(),
        series: density_sweep_series(
            &[
                AlgorithmKind::NaiveThreads,
                AlgorithmKind::Random,
                AlgorithmKind::Popularity,
            ],
            &[GraphScenario::Uniform, GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

/// Figure 5: final clock size of the three online mechanisms as the number of
/// nodes per side increases (density 0.05).
pub fn fig5(trials: usize) -> FigureData {
    FigureData {
        id: "fig5".into(),
        title: "Vector size vs. number of nodes (online mechanisms, density 0.05)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::NaiveThreads,
                AlgorithmKind::Random,
                AlgorithmKind::Popularity,
            ],
            &[GraphScenario::Uniform, GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

/// Figure 6: offline optimal vs. online Popularity vs. Naive as graph density
/// increases (50 threads + 50 objects, Uniform scenario).
pub fn fig6(trials: usize) -> FigureData {
    FigureData {
        id: "fig6".into(),
        title: "Offline optimal vs. online mechanisms vs. density (50+50 nodes)".into(),
        x_label: "graph density".into(),
        y_label: "final vector clock size".into(),
        series: density_sweep_series(
            &[
                AlgorithmKind::OfflineOptimal,
                AlgorithmKind::Popularity,
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::Uniform],
            trials,
        ),
    }
}

/// Figure 7: offline optimal vs. online Popularity vs. Naive as the number of
/// nodes increases (density 0.05, Uniform scenario).
pub fn fig7(trials: usize) -> FigureData {
    FigureData {
        id: "fig7".into(),
        title: "Offline optimal vs. online mechanisms vs. node count (density 0.05)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::OfflineOptimal,
                AlgorithmKind::Popularity,
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::Uniform],
            trials,
        ),
    }
}

/// Extension experiment: the Adaptive hybrid of Section V's conclusion
/// compared against its two ingredients over the node sweep, on the
/// Nonuniform scenario where Popularity shines.
pub fn adaptive_ablation(trials: usize) -> FigureData {
    FigureData {
        id: "adaptive".into(),
        title: "Adaptive hybrid vs. Popularity vs. Naive (density 0.05, nonuniform)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::Adaptive,
                AlgorithmKind::Popularity,
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Keep trials tiny in unit tests; the binary uses more.
    const T: usize = 3;

    #[test]
    fn fig4_has_six_series_over_the_density_sweep() {
        let f = fig4(T);
        assert_eq!(f.series.len(), 6);
        assert_eq!(f.x_values(), DENSITY_SWEEP.to_vec());
        assert!(f.series_named("naive (uniform)").is_some());
        assert!(f.series_named("popularity (nonuniform)").is_some());
        assert!(f.series_named("does-not-exist").is_none());
        assert_eq!(f.id, "fig4");
    }

    #[test]
    fn fig4_shape_low_density_favors_popularity_high_density_favors_naive() {
        let f = fig4(5);
        let naive = f.series_named("naive (uniform)").unwrap();
        let pop = f.series_named("popularity (uniform)").unwrap();
        // Low density: popularity clearly below naive.
        assert!(pop.mean_at(0.01).unwrap() < naive.mean_at(0.01).unwrap());
        // High density: naive no worse than popularity (the crossover).
        assert!(naive.mean_at(0.9).unwrap() <= pop.mean_at(0.9).unwrap());
    }

    #[test]
    fn fig6_offline_is_lower_envelope() {
        let f = fig6(T);
        let offline = f.series_named("offline-optimal (uniform)").unwrap();
        let pop = f.series_named("popularity (uniform)").unwrap();
        let naive = f.series_named("naive (uniform)").unwrap();
        for (i, x) in DENSITY_SWEEP.iter().enumerate() {
            assert!(
                offline.points[i].mean_size <= pop.mean_at(*x).unwrap() + 1e-9,
                "offline above popularity at density {x}"
            );
            assert!(
                offline.points[i].mean_size <= naive.mean_at(*x).unwrap() + 1e-9,
                "offline above naive at density {x}"
            );
        }
    }

    #[test]
    fn fig7_node_sweep_is_monotone_for_naive() {
        let f = fig7(T);
        let naive = f.series_named("naive (uniform)").unwrap();
        for w in naive.points.windows(2) {
            assert!(
                w[0].mean_size <= w[1].mean_size + 1e-9,
                "naive size should not shrink as nodes grow"
            );
        }
        assert_eq!(
            f.x_values(),
            NODE_SWEEP.iter().map(|&n| n as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_never_worse_than_both_ingredients_everywhere() {
        // The hybrid should track the better of its two ingredients up to a
        // small margin (it cannot beat both at once, but it must not blow up).
        let f = adaptive_ablation(3);
        let adaptive = f.series_named("adaptive (nonuniform)").unwrap();
        let naive = f.series_named("naive (nonuniform)").unwrap();
        for (a, n) in adaptive.points.iter().zip(naive.points.iter()) {
            assert!(
                a.mean_size <= n.mean_size * 1.5 + 5.0,
                "adaptive {} far above naive {} at x={}",
                a.mean_size,
                n.mean_size,
                a.x
            );
        }
    }

    #[test]
    fn series_mean_at_missing_x_is_none() {
        let s = Series {
            name: "x".into(),
            points: vec![DataPoint {
                x: 1.0,
                mean_size: 2.0,
                min_size: 2,
                max_size: 2,
            }],
        };
        assert_eq!(s.mean_at(1.0), Some(2.0));
        assert_eq!(s.mean_at(3.0), None);
    }
}
