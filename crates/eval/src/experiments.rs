//! Figure drivers: one function per figure of the paper's evaluation, plus
//! the registry sweep over synthetic workload families (including the
//! adversarial star stream).

use serde::{Deserialize, Serialize};

use mvc_core::{replay, OfflineOptimizer};
use mvc_graph::{GraphScenario, RandomGraphBuilder};
use mvc_online::{
    CompetitiveReport, CompetitiveTracker, MechanismRegistry, OnlineTimestamper,
    UnknownMechanismError,
};
use mvc_trace::{WorkloadBuilder, WorkloadKind};

use crate::runner::{average_size, AlgorithmKind, DataPoint, SweepConfig};

/// One line of a figure: an algorithm (and scenario) with its measured
/// points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name, e.g. `"popularity (nonuniform)"`.
    pub name: String,
    /// Measured points, in x order.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// The mean size at the given x value, if that x was measured.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.mean_size)
    }
}

/// A complete reproduced figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the swept x axis.
    pub x_label: String,
    /// Label of the y axis (always a clock size here).
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The x values of the first series (all series share the same sweep).
    pub fn x_values(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default()
    }
}

/// Densities swept by the density figures (Figures 4 and 6).
pub const DENSITY_SWEEP: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9];

/// Node counts per side swept by the size figures (Figures 5 and 7).
pub const NODE_SWEEP: &[usize] = &[10, 20, 30, 40, 50, 70, 90, 110, 130, 150];

/// Density used by the node-count figures (matches the paper).
pub const FIXED_DENSITY: f64 = 0.05;

/// Nodes per side used by the density figures (matches the paper).
pub const FIXED_NODES: usize = 50;

fn scenario_label(scenario: GraphScenario) -> &'static str {
    scenario.name()
}

fn density_sweep_series(
    algorithms: &[AlgorithmKind],
    scenarios: &[GraphScenario],
    trials: usize,
) -> Vec<Series> {
    let mut series = Vec::new();
    for &scenario in scenarios {
        for alg in algorithms {
            let points = DENSITY_SWEEP
                .iter()
                .map(|&density| {
                    let cfg = SweepConfig {
                        threads: FIXED_NODES,
                        objects: FIXED_NODES,
                        density,
                        scenario,
                        trials,
                    };
                    average_size(&cfg, alg, density)
                })
                .collect();
            series.push(Series {
                name: format!("{} ({})", alg.name(), scenario_label(scenario)),
                points,
            });
        }
    }
    series
}

fn node_sweep_series(
    algorithms: &[AlgorithmKind],
    scenarios: &[GraphScenario],
    trials: usize,
) -> Vec<Series> {
    let mut series = Vec::new();
    for &scenario in scenarios {
        for alg in algorithms {
            let points = NODE_SWEEP
                .iter()
                .map(|&nodes| {
                    let cfg = SweepConfig {
                        threads: nodes,
                        objects: nodes,
                        density: FIXED_DENSITY,
                        scenario,
                        trials,
                    };
                    average_size(&cfg, alg, nodes as f64)
                })
                .collect();
            series.push(Series {
                name: format!("{} ({})", alg.name(), scenario_label(scenario)),
                points,
            });
        }
    }
    series
}

/// Figure 4: final clock size of the three online mechanisms as graph density
/// increases (50 threads + 50 objects, Uniform and Nonuniform scenarios).
pub fn fig4(trials: usize) -> FigureData {
    FigureData {
        id: "fig4".into(),
        title: "Vector size vs. graph density (online mechanisms, 50+50 nodes)".into(),
        x_label: "graph density".into(),
        y_label: "final vector clock size".into(),
        series: density_sweep_series(
            &[
                AlgorithmKind::NaiveThreads,
                AlgorithmKind::online("random"),
                AlgorithmKind::online("popularity"),
            ],
            &[GraphScenario::Uniform, GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

/// Figure 5: final clock size of the three online mechanisms as the number of
/// nodes per side increases (density 0.05).
pub fn fig5(trials: usize) -> FigureData {
    FigureData {
        id: "fig5".into(),
        title: "Vector size vs. number of nodes (online mechanisms, density 0.05)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::NaiveThreads,
                AlgorithmKind::online("random"),
                AlgorithmKind::online("popularity"),
            ],
            &[GraphScenario::Uniform, GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

/// Figure 6: offline optimal vs. online Popularity vs. Naive as graph density
/// increases (50 threads + 50 objects, Uniform scenario).
pub fn fig6(trials: usize) -> FigureData {
    FigureData {
        id: "fig6".into(),
        title: "Offline optimal vs. online mechanisms vs. density (50+50 nodes)".into(),
        x_label: "graph density".into(),
        y_label: "final vector clock size".into(),
        series: density_sweep_series(
            &[
                AlgorithmKind::OfflineOptimal,
                AlgorithmKind::online("popularity"),
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::Uniform],
            trials,
        ),
    }
}

/// Figure 7: offline optimal vs. online Popularity vs. Naive as the number of
/// nodes increases (density 0.05, Uniform scenario).
pub fn fig7(trials: usize) -> FigureData {
    FigureData {
        id: "fig7".into(),
        title: "Offline optimal vs. online mechanisms vs. node count (density 0.05)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::OfflineOptimal,
                AlgorithmKind::online("popularity"),
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::Uniform],
            trials,
        ),
    }
}

/// Extension experiment: the Adaptive hybrid of Section V's conclusion
/// compared against its two ingredients over the node sweep, on the
/// Nonuniform scenario where Popularity shines.
pub fn adaptive_ablation(trials: usize) -> FigureData {
    FigureData {
        id: "adaptive".into(),
        title: "Adaptive hybrid vs. Popularity vs. Naive (density 0.05, nonuniform)".into(),
        x_label: "nodes per side".into(),
        y_label: "final vector clock size".into(),
        series: node_sweep_series(
            &[
                AlgorithmKind::online("adaptive"),
                AlgorithmKind::online("popularity"),
                AlgorithmKind::NaiveThreads,
            ],
            &[GraphScenario::default_nonuniform()],
            trials,
        ),
    }
}

/// Operations generated per side-node in the registry workload sweep; enough
/// for the round-robin star to reach every thread several times.
const SWEEP_OPS_PER_NODE: usize = 4;

/// Sweeps registry mechanisms (by name) over a synthetic workload family,
/// driving each through the **full** unified timestamping pipeline — a
/// `Box<dyn OnlineMechanism>` inside an [`OnlineTimestamper`], with the
/// final size taken from the [`TimestampReport`](mvc_core::TimestampReport)
/// — rather than the decision-only simulation the graph figures use.  An
/// `offline-optimal` reference series over the same computations is appended.
///
/// The x axis is the thread count per side over [`NODE_SWEEP`].
///
/// # Errors
///
/// Returns [`UnknownMechanismError`] (before measuring anything) when a name
/// is not in the [`MechanismRegistry`].
pub fn registry_sweep(
    mechanisms: &[String],
    kind: WorkloadKind,
    trials: usize,
) -> Result<FigureData, UnknownMechanismError> {
    assert!(trials > 0, "at least one trial is required");
    let registry = MechanismRegistry::new();
    for name in mechanisms {
        registry.from_name(name)?;
    }

    let measure = |sizes: &[usize], nodes: usize| DataPoint {
        x: nodes as f64,
        mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
        min_size: *sizes.iter().min().expect("trials > 0"),
        max_size: *sizes.iter().max().expect("trials > 0"),
    };

    // One series per requested mechanism plus the offline-optimal reference;
    // each (nodes, trial) computation is generated once and shared by all of
    // them, so every series really measures the same computations.
    let offline_index = mechanisms.len();
    let mut sizes = vec![vec![Vec::with_capacity(trials); NODE_SWEEP.len()]; mechanisms.len() + 1];
    for (node_index, &nodes) in NODE_SWEEP.iter().enumerate() {
        for trial in 0..trials {
            let c = WorkloadBuilder::new(nodes, nodes)
                .operations(nodes * SWEEP_OPS_PER_NODE)
                .kind(kind)
                .seed(trial as u64)
                .build();
            for (mechanism_index, name) in mechanisms.iter().enumerate() {
                let mechanism = registry
                    .clone()
                    .seed(crate::runner::mechanism_seed(trial as u64))
                    .from_name(name)
                    .expect("validated above");
                let mut timestamper = OnlineTimestamper::new(mechanism);
                let run = replay(&mut timestamper, &c)
                    .expect("registry mechanisms honor the endpoint contract");
                sizes[mechanism_index][node_index].push(run.report.clock_size());
            }
            sizes[offline_index][node_index].push(
                OfflineOptimizer::new()
                    .plan_for_computation(&c)
                    .clock_size(),
            );
        }
    }

    let series_names = mechanisms
        .iter()
        .cloned()
        .chain(std::iter::once("offline-optimal".to_owned()));
    let series = series_names
        .zip(sizes)
        .map(|(name, per_node)| Series {
            name,
            points: per_node
                .iter()
                .zip(NODE_SWEEP)
                .map(|(sizes, &nodes)| measure(sizes, nodes))
                .collect(),
        })
        .collect();

    Ok(FigureData {
        id: format!("sweep-{}", kind.name()),
        title: format!(
            "Registry mechanisms on the {} workload (full pipeline)",
            kind.name()
        ),
        x_label: "threads per side".into(),
        y_label: "final vector clock size".into(),
        series,
    })
}

/// Number of evenly spaced prefixes sampled by [`competitive_trajectory`].
const TRAJECTORY_SAMPLES: usize = 24;

/// Competitive-trajectory experiment: the *per-reveal* view behind the
/// paper's Figures 6/7 gap.  Each named registry mechanism replays the same
/// seeded reveal streams through a [`CompetitiveTracker`], and the figure
/// reports the online clock size after every revealed edge next to an
/// `offline-optimal` series — the optimum of the revealed prefix, maintained
/// incrementally by [`mvc_graph::IncrementalOptimum`] (one augmenting-path
/// attempt per edge) rather than recomputed from scratch, which is what makes
/// sweeping whole trajectories affordable.
///
/// The x axis is the number of revealed edges, sampled at up to
/// `TRAJECTORY_SAMPLES` (24) evenly spaced prefixes of the shortest stream
/// across trials; values are averaged over `config.trials` seeds.
///
/// # Errors
///
/// Returns [`UnknownMechanismError`] (before measuring anything) when a name
/// is not in the [`MechanismRegistry`].
///
/// # Panics
///
/// Panics when `mechanisms` is empty or `config.trials` is zero.
pub fn competitive_trajectory(
    mechanisms: &[String],
    config: &SweepConfig,
) -> Result<FigureData, UnknownMechanismError> {
    assert!(!mechanisms.is_empty(), "at least one mechanism is required");
    assert!(config.trials > 0, "at least one trial is required");
    let registry = MechanismRegistry::new();
    for name in mechanisms {
        registry.from_name(name)?;
    }

    // One tracked run per (mechanism, trial); each per-trial stream is
    // generated once and shared by every mechanism, so the offline series
    // (identical across mechanisms by construction) is taken from the first
    // mechanism's reports.
    let mut reports: Vec<Vec<CompetitiveReport>> = mechanisms
        .iter()
        .map(|_| Vec::with_capacity(config.trials))
        .collect();
    for trial in 0..config.trials {
        let (_, stream) = RandomGraphBuilder::new(config.threads, config.objects)
            .density(config.density)
            .scenario(config.scenario)
            .seed(trial as u64)
            .build_edge_stream();
        for (per_trial, name) in reports.iter_mut().zip(mechanisms) {
            let mechanism = registry
                .clone()
                .seed(crate::runner::mechanism_seed(trial as u64))
                .from_name(name)
                .expect("validated above");
            per_trial.push(CompetitiveTracker::new(mechanism).run(&stream));
        }
    }

    let min_len = reports[0]
        .iter()
        .map(|r| r.trajectory.len())
        .min()
        .unwrap_or(0);
    // Ceiling division keeps the sample count at (or just under) the cap;
    // the final prefix is always included.
    let stride = min_len.div_ceil(TRAJECTORY_SAMPLES).max(1);
    let sampled: Vec<usize> = (1..=min_len)
        .filter(|i| i % stride == 0 || *i == min_len)
        .collect();

    let aggregate = |values: &dyn Fn(&CompetitiveReport, usize) -> usize,
                     per_trial: &[CompetitiveReport]| {
        sampled
            .iter()
            .map(|&edges| {
                let sizes: Vec<usize> = per_trial.iter().map(|r| values(r, edges - 1)).collect();
                DataPoint {
                    x: edges as f64,
                    mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
                    min_size: *sizes.iter().min().expect("trials > 0"),
                    max_size: *sizes.iter().max().expect("trials > 0"),
                }
            })
            .collect::<Vec<_>>()
    };

    let mut series: Vec<Series> = mechanisms
        .iter()
        .zip(&reports)
        .map(|(name, per_trial)| Series {
            name: name.clone(),
            points: aggregate(&|r, i| r.trajectory[i].online_size, per_trial),
        })
        .collect();
    series.push(Series {
        name: "offline-optimal".into(),
        points: aggregate(&|r, i| r.trajectory[i].offline_optimum, &reports[0]),
    });

    Ok(FigureData {
        id: "trajectory".into(),
        title: format!(
            "Competitive trajectory ({}+{} nodes, density {}, {})",
            config.threads,
            config.objects,
            config.density,
            config.scenario.name()
        ),
        x_label: "revealed edges".into(),
        y_label: "clock size after reveal".into(),
        series,
    })
}

/// The adversarial lower-bound sweep: every registry mechanism on the
/// single-hub [`WorkloadKind::Star`] stream, where naive-threads degenerates
/// to one component per thread while the optimum stays at 1.
pub fn star_sweep(trials: usize) -> FigureData {
    let names: Vec<String> = MechanismRegistry::names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    registry_sweep(&names, WorkloadKind::Star { hubs: 1 }, trials)
        .expect("registry names are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Keep trials tiny in unit tests; the binary uses more.
    const T: usize = 3;

    #[test]
    fn fig4_has_six_series_over_the_density_sweep() {
        let f = fig4(T);
        assert_eq!(f.series.len(), 6);
        assert_eq!(f.x_values(), DENSITY_SWEEP.to_vec());
        assert!(f.series_named("naive (uniform)").is_some());
        assert!(f.series_named("popularity (nonuniform)").is_some());
        assert!(f.series_named("does-not-exist").is_none());
        assert_eq!(f.id, "fig4");
    }

    #[test]
    fn fig4_shape_low_density_favors_popularity_high_density_favors_naive() {
        let f = fig4(5);
        let naive = f.series_named("naive (uniform)").unwrap();
        let pop = f.series_named("popularity (uniform)").unwrap();
        // Low density: popularity clearly below naive.
        assert!(pop.mean_at(0.01).unwrap() < naive.mean_at(0.01).unwrap());
        // High density: naive no worse than popularity (the crossover).
        assert!(naive.mean_at(0.9).unwrap() <= pop.mean_at(0.9).unwrap());
    }

    #[test]
    fn fig6_offline_is_lower_envelope() {
        let f = fig6(T);
        let offline = f.series_named("offline-optimal (uniform)").unwrap();
        let pop = f.series_named("popularity (uniform)").unwrap();
        let naive = f.series_named("naive (uniform)").unwrap();
        for (i, x) in DENSITY_SWEEP.iter().enumerate() {
            assert!(
                offline.points[i].mean_size <= pop.mean_at(*x).unwrap() + 1e-9,
                "offline above popularity at density {x}"
            );
            assert!(
                offline.points[i].mean_size <= naive.mean_at(*x).unwrap() + 1e-9,
                "offline above naive at density {x}"
            );
        }
    }

    #[test]
    fn fig7_node_sweep_is_monotone_for_naive() {
        let f = fig7(T);
        let naive = f.series_named("naive (uniform)").unwrap();
        for w in naive.points.windows(2) {
            assert!(
                w[0].mean_size <= w[1].mean_size + 1e-9,
                "naive size should not shrink as nodes grow"
            );
        }
        assert_eq!(
            f.x_values(),
            NODE_SWEEP.iter().map(|&n| n as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_never_worse_than_both_ingredients_everywhere() {
        // The hybrid should track the better of its two ingredients up to a
        // small margin (it cannot beat both at once, but it must not blow up).
        let f = adaptive_ablation(3);
        let adaptive = f.series_named("adaptive (nonuniform)").unwrap();
        let naive = f.series_named("naive (nonuniform)").unwrap();
        for (a, n) in adaptive.points.iter().zip(naive.points.iter()) {
            assert!(
                a.mean_size <= n.mean_size * 1.5 + 5.0,
                "adaptive {} far above naive {} at x={}",
                a.mean_size,
                n.mean_size,
                a.x
            );
        }
    }

    #[test]
    fn star_sweep_shows_the_lower_bound_gap() {
        let f = star_sweep(2);
        assert_eq!(f.id, "sweep-star");
        let naive = f.series_named("naive-threads").unwrap();
        let popularity = f.series_named("popularity").unwrap();
        let adaptive = f.series_named("adaptive").unwrap();
        let offline = f.series_named("offline-optimal").unwrap();
        for (i, &nodes) in NODE_SWEEP.iter().enumerate() {
            assert_eq!(
                offline.points[i].mean_size, 1.0,
                "one hub covers the whole star"
            );
            assert_eq!(
                naive.points[i].mean_size, nodes as f64,
                "naive-threads pays one component per thread"
            );
            assert!(
                popularity.points[i].mean_size <= 2.0,
                "popularity must converge on the hub"
            );
            assert!(adaptive.points[i].mean_size <= 2.0);
        }
    }

    #[test]
    fn trajectory_keeps_online_above_offline_at_every_prefix() {
        let cfg = SweepConfig {
            threads: 20,
            objects: 20,
            density: 0.1,
            scenario: GraphScenario::default_nonuniform(),
            trials: 3,
        };
        let names = vec!["popularity".to_string(), "naive-threads".to_string()];
        let f = competitive_trajectory(&names, &cfg).unwrap();
        assert_eq!(f.id, "trajectory");
        assert_eq!(f.series.len(), 3, "two mechanisms + offline reference");
        let offline = f.series_named("offline-optimal").unwrap();
        assert!(!offline.points.is_empty());
        // The optimum of a growing revealed graph can only grow.
        for w in offline.points.windows(2) {
            assert!(w[0].mean_size <= w[1].mean_size + 1e-9);
            assert!(w[0].x < w[1].x, "sampled prefixes are strictly ordered");
        }
        for name in &names {
            let s = f.series_named(name).unwrap();
            for (p, o) in s.points.iter().zip(&offline.points) {
                assert_eq!(p.x, o.x, "all series share the sampled prefixes");
                assert!(
                    p.mean_size + 1e-9 >= o.mean_size,
                    "{name} dipped below the offline optimum at x={}",
                    p.x
                );
            }
        }
    }

    #[test]
    fn trajectory_rejects_unknown_mechanisms() {
        let cfg = SweepConfig::fifty_by_fifty(0.1, GraphScenario::Uniform, 1);
        let err = competitive_trajectory(&["warp-drive".to_string()], &cfg)
            .err()
            .unwrap();
        assert_eq!(err.name, "warp-drive");
    }

    #[test]
    fn registry_sweep_rejects_unknown_names_before_measuring() {
        let err = registry_sweep(&["warp-drive".to_string()], WorkloadKind::Uniform, 1)
            .err()
            .unwrap();
        assert_eq!(err.name, "warp-drive");
    }

    #[test]
    fn registry_sweep_works_on_any_workload_family() {
        let names = vec!["popularity".to_string()];
        let f = registry_sweep(&names, WorkloadKind::Uniform, 1).unwrap();
        assert_eq!(f.id, "sweep-uniform");
        assert_eq!(f.series.len(), 2, "requested mechanism + offline reference");
        let pop = f.series_named("popularity").unwrap();
        let offline = f.series_named("offline-optimal").unwrap();
        for (p, o) in pop.points.iter().zip(offline.points.iter()) {
            assert!(p.mean_size >= o.mean_size, "online below offline optimum");
        }
    }

    #[test]
    fn series_mean_at_missing_x_is_none() {
        let s = Series {
            name: "x".into(),
            points: vec![DataPoint {
                x: 1.0,
                mean_size: 2.0,
                min_size: 2,
                max_size: 2,
            }],
        };
        assert_eq!(s.mean_at(1.0), Some(2.0));
        assert_eq!(s.mean_at(3.0), None);
    }
}
