//! Evaluation harness: regenerates every figure of the paper's Section V.
//!
//! The paper's evaluation measures the **final vector clock size** produced
//! by the online mechanisms (Naive / Random / Popularity) and by the offline
//! optimal algorithm on randomly generated thread–object bipartite graphs in
//! two scenarios (*Uniform* and *Nonuniform*), while sweeping either the
//! graph density (at 50 threads + 50 objects) or the number of nodes (at
//! density 0.05):
//!
//! | Experiment | Sweep | Algorithms | Paper figure |
//! |---|---|---|---|
//! | [`experiments::fig4`] | density, 50+50 nodes | Naive, Random, Popularity | Fig. 4 |
//! | [`experiments::fig5`] | nodes/side, density 0.05 | Naive, Random, Popularity | Fig. 5 |
//! | [`experiments::fig6`] | density, 50+50 nodes | Offline optimal, Popularity, Naive | Fig. 6 |
//! | [`experiments::fig7`] | nodes/side, density 0.05 | Offline optimal, Popularity, Naive | Fig. 7 |
//! | [`experiments::adaptive_ablation`] | nodes/side, density 0.05 | Adaptive vs its ingredients | §V last paragraph |
//! | [`experiments::star_sweep`] | nodes/side, star workload | every registry mechanism | §IV lower bound |
//!
//! Mechanisms are selected **by name** through
//! [`MechanismRegistry`](mvc_online::MechanismRegistry) — the harness holds
//! no concrete mechanism types — and [`experiments::registry_sweep`] sweeps
//! any registry subset over any synthetic workload family (including the
//! adversarial [`WorkloadKind::Star`](mvc_trace::WorkloadKind) stream)
//! through the full unified timestamping pipeline.
//!
//! Every data point is averaged over a configurable number of seeds; graphs,
//! reveal orders and random mechanisms are all seeded, so a report is
//! reproducible bit-for-bit.  [`report`] renders results as aligned text
//! tables and CSV.
//!
//! Beyond the paper's clock-size figures, [`throughput`] measures recording
//! *speed* — sequential vs. sharded events per second over the same workload
//! and component map, both as pure stamping and through the full segmented
//! ingest → merge → stamp → sink pipeline with a selectable
//! [`SinkKind`] backend — and renders it as JSON (`mvc-eval throughput`), so
//! future changes have a mechanical bench trajectory to compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod serve;
pub mod throughput;

pub use experiments::{
    adaptive_ablation, competitive_trajectory, fig4, fig5, fig6, fig7, registry_sweep, star_sweep,
    FigureData, Series,
};
pub use report::{render_csv, render_table};
pub use runner::{average_size, single_run, AlgorithmKind, DataPoint, SweepConfig};
pub use serve::{
    produce, render_produce_json, render_serve_json, serve, serve_with_metrics, ProduceConfig,
    ProduceSummary, ServeSummary,
};
pub use throughput::{
    measure_throughput, render_throughput_json, AnalysisVerdicts, EngineThroughput, NetThroughput,
    ObsOverhead, SinkKind, ThroughputConfig, ThroughputReport,
};
