//! Component slicing: how the clock's components are striped across shards,
//! and the per-shard state that applies the protocol to one slice.
//!
//! Component `k` of the mixed vector clock is owned by shard `k % shards`
//! and lives at local index `k / shards` inside that shard's slice.  The
//! striped (rather than contiguous-range) assignment means a component added
//! mid-run lands on some shard without moving any existing slice data, and
//! the slices stay balanced (sizes differ by at most one) no matter how the
//! clock grows.
//!
//! The protocol itself is componentwise independent: for every component
//! `k`, an event `e = (t, o)` performs
//!
//! ```text
//! m = max(T[t][k], O[o][k]) + (1 if k == e.c else 0)
//! T[t][k] = O[o][k] = e.v[k] = m
//! ```
//!
//! and no other component's value participates.  A shard can therefore apply
//! the *whole event stream in arrival order* to just its slice of every
//! per-thread / per-object vector, and the concatenation of the slices is
//! bit-for-bit the sequential engine's result.  That independence is the
//! entire correctness argument for the sharded engine: shards never
//! communicate, they only have to see the same events in the same order.

/// Number of components a shard owns when the clock has `width` components:
/// the size of `{k < width : k % shards == shard}`.
pub(crate) fn local_width(width: usize, shard: usize, shards: usize) -> usize {
    if width > shard {
        (width - shard).div_ceil(shards)
    } else {
        0
    }
}

/// One routed event, as shipped to every shard: dense thread / object
/// indices and the *global* index of the component the protocol increments
/// (`e.c` in the paper — the object's component if the object is in the
/// clock, otherwise the thread's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventRec {
    pub(crate) t: u32,
    pub(crate) o: u32,
    pub(crate) c: u32,
}

/// A shard's slice of the engine state: for every thread and object, the
/// values of the components this shard owns, at local (striped) indices.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    shard: usize,
    shards: usize,
    threads: Vec<Vec<u64>>,
    objects: Vec<Vec<u64>>,
}

impl ShardState {
    pub(crate) fn new(shard: usize, shards: usize) -> Self {
        ShardState {
            shard,
            shards,
            threads: Vec::new(),
            objects: Vec::new(),
        }
    }

    /// Applies a chunk of routed events, in order, to this shard's slice and
    /// appends each event's slice values (event-major: `events.len()` groups
    /// of `local_width` values) to `out`.
    ///
    /// `width` is the global clock width for the whole chunk — the router
    /// never grows the clock inside a batch, so a single value suffices; new
    /// components appear to the shard as a larger `width` on a later chunk
    /// and their counters start at zero, exactly like the sequential
    /// engine's lazy padding.
    pub(crate) fn apply(&mut self, width: usize, events: &[EventRec], out: &mut Vec<u64>) {
        let ln = local_width(width, self.shard, self.shards);
        if ln == 0 {
            return;
        }
        out.reserve(events.len() * ln);
        for ev in events {
            let (t, o) = (ev.t as usize, ev.o as usize);
            grow_row(&mut self.threads, t, ln);
            grow_row(&mut self.objects, o, ln);
            let trow = &mut self.threads[t][..ln];
            let orow = &mut self.objects[o][..ln];
            // Elementwise max-merge first (a clean, vectorisable loop), then
            // fix up the single incremented component, if this shard owns it.
            let base = out.len();
            for (tj, oj) in trow.iter_mut().zip(orow.iter_mut()) {
                let m = (*tj).max(*oj);
                *tj = m;
                *oj = m;
                out.push(m);
            }
            let c = ev.c as usize;
            if c % self.shards == self.shard {
                let local_c = c / self.shards;
                let m = trow[local_c] + 1;
                trow[local_c] = m;
                orow[local_c] = m;
                out[base + local_c] = m;
            }
        }
    }
}

/// Ensures `rows[index]` exists and holds at least `len` counters (new ones
/// are zero: a component no past event incremented).
fn grow_row(rows: &mut Vec<Vec<u64>>, index: usize, len: usize) {
    if index >= rows.len() {
        rows.resize_with(index + 1, Vec::new);
    }
    let row = &mut rows[index];
    if row.len() < len {
        row.resize(len, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_width_partitions_every_component_exactly_once() {
        for width in 0..40 {
            for shards in 1..10 {
                let total: usize = (0..shards).map(|s| local_width(width, s, shards)).sum();
                assert_eq!(total, width, "width {width} over {shards} shards");
                // Balanced: slice sizes differ by at most one.
                let sizes: Vec<_> = (0..shards).map(|s| local_width(width, s, shards)).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn striped_assignment_round_trips() {
        let shards = 3;
        let width = 8;
        for k in 0..width {
            let shard = k % shards;
            let local = k / shards;
            assert!(local < local_width(width, shard, shards));
            assert_eq!(shard + local * shards, k, "k = shard + local * shards");
        }
    }

    #[test]
    fn single_shard_apply_is_the_whole_protocol() {
        // One shard owning everything must reproduce the sequential engine's
        // arithmetic exactly: increments on the event's component, max-merge
        // of thread and object rows.
        let mut s = ShardState::new(0, 1);
        let mut out = Vec::new();
        let events = [
            EventRec { t: 0, o: 0, c: 0 },
            EventRec { t: 1, o: 0, c: 0 },
            EventRec { t: 0, o: 1, c: 1 },
        ];
        s.apply(2, &events, &mut out);
        assert_eq!(out, vec![1, 0, 2, 0, 1, 1]);
    }

    #[test]
    fn shard_without_components_emits_nothing() {
        let mut s = ShardState::new(3, 4);
        let mut out = Vec::new();
        s.apply(3, &[EventRec { t: 0, o: 0, c: 0 }], &mut out);
        assert!(out.is_empty(), "width 3 leaves shard 3 of 4 empty");
    }

    #[test]
    fn two_shard_slices_merge_to_the_single_shard_protocol() {
        // The N-sharded apply-and-merge decomposition is the same protocol
        // as one shard owning everything; check a hand-merged 2-shard run.
        let events = [
            EventRec { t: 0, o: 0, c: 0 },
            EventRec { t: 1, o: 0, c: 0 },
            EventRec { t: 1, o: 1, c: 2 },
            EventRec { t: 0, o: 1, c: 1 },
        ];
        let width = 3;
        let mut whole = Vec::new();
        ShardState::new(0, 1).apply(width, &events, &mut whole);

        let mut bufs = [Vec::new(), Vec::new()];
        for (s, buf) in bufs.iter_mut().enumerate() {
            ShardState::new(s, 2).apply(width, &events, buf);
        }
        for i in 0..events.len() {
            for k in 0..width {
                let ln = local_width(width, k % 2, 2);
                assert_eq!(
                    whole[i * width + k],
                    bufs[k % 2][i * ln + k / 2],
                    "event {i}, component {k}"
                );
            }
        }
    }

    #[test]
    fn width_growth_between_chunks_pads_with_zeros() {
        let mut s = ShardState::new(0, 2);
        let mut out = Vec::new();
        // Width 1: shard 0 owns component 0.
        s.apply(1, &[EventRec { t: 0, o: 0, c: 0 }], &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        // Width 3: shard 0 now owns components 0 and 2; component 2 starts
        // at zero for the existing thread/object rows.
        s.apply(3, &[EventRec { t: 0, o: 0, c: 2 }], &mut out);
        assert_eq!(out, vec![1, 1], "component 0 carried over, 2 incremented");
    }
}
