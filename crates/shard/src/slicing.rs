//! Component slicing: how the clock's components are divided across shards,
//! and the per-shard state that applies the protocol to one slice.
//!
//! Which shard owns which component is decided by the engine's
//! [`AssignmentTable`](crate::assignment): modulo striping by default
//! (component `k` on shard `k % N` at local index `k / N`, so a component
//! added mid-run lands on some shard without moving any existing slice
//! data), or a locality-aware partition of the observed interaction graph.
//! The shard itself is assignment-agnostic: every routed event arrives with
//! its increment component pre-resolved to `(owning shard, local index)`,
//! and the shard only ever sees local indices.
//!
//! The protocol itself is componentwise independent: for every component
//! `k`, an event `e = (t, o)` performs
//!
//! ```text
//! m = max(T[t][k], O[o][k]) + (1 if k == e.c else 0)
//! T[t][k] = O[o][k] = e.v[k] = m
//! ```
//!
//! and no other component's value participates.  A shard can therefore apply
//! the *whole event stream in arrival order* to just its slice of every
//! per-thread / per-object vector, and the concatenation of the slices is
//! bit-for-bit the sequential engine's result — under *any* bijective
//! component assignment.  That independence is the entire correctness
//! argument for the sharded engine (and for repartitioning): shards never
//! communicate, they only have to see the same events in the same order.

/// Number of components a shard owns under modulo striping when the clock
/// has `width` components: the size of `{k < width : k % shards == shard}`.
/// (The router now asks its [`AssignmentTable`](crate::assignment) instead;
/// the tests keep this closed form to cross-check striped layouts.)
#[cfg(test)]
pub(crate) fn local_width(width: usize, shard: usize, shards: usize) -> usize {
    if width > shard {
        (width - shard).div_ceil(shards)
    } else {
        0
    }
}

/// One routed event, as shipped to every shard: dense thread / object
/// indices and the component the protocol increments (`e.c` in the paper —
/// the object's component if the object is in the clock, otherwise the
/// thread's), both as the *global* index (used by the fused executor and
/// the tests) and pre-resolved to the owning shard and its local index
/// (used by the shard workers, which never see global indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventRec {
    pub(crate) t: u32,
    pub(crate) o: u32,
    pub(crate) c: u32,
    pub(crate) c_shard: u32,
    pub(crate) c_local: u32,
}

impl EventRec {
    /// An event record under modulo striping (how the non-test router built
    /// records before assignments became pluggable; tests use it to state
    /// striped layouts concisely).
    #[cfg(test)]
    pub(crate) fn striped(t: u32, o: u32, c: u32, shards: u32) -> Self {
        EventRec {
            t,
            o,
            c,
            c_shard: c % shards,
            c_local: c / shards,
        }
    }
}

/// A shard's slice of the engine state: for every thread and object, the
/// values of the components this shard owns, at local indices.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    shard: u32,
    threads: Vec<Vec<u64>>,
    objects: Vec<Vec<u64>>,
}

impl ShardState {
    pub(crate) fn new(shard: usize) -> Self {
        ShardState {
            shard: shard as u32,
            threads: Vec::new(),
            objects: Vec::new(),
        }
    }

    /// Applies a chunk of routed events, in order, to this shard's slice and
    /// appends each event's slice values (event-major: `events.len()` groups
    /// of `ln` values) to `out`.
    ///
    /// `ln` is this shard's slice width for the whole chunk — the router
    /// never grows the clock inside a batch, so a single value suffices; new
    /// components appear to the shard as a larger `ln` on a later chunk and
    /// their counters start at zero, exactly like the sequential engine's
    /// lazy padding.
    pub(crate) fn apply(&mut self, ln: usize, events: &[EventRec], out: &mut Vec<u64>) {
        if ln == 0 {
            return;
        }
        out.reserve(events.len() * ln);
        for ev in events {
            let (t, o) = (ev.t as usize, ev.o as usize);
            grow_row(&mut self.threads, t, ln);
            grow_row(&mut self.objects, o, ln);
            let trow = &mut self.threads[t][..ln];
            let orow = &mut self.objects[o][..ln];
            // Elementwise max-merge first (a clean, vectorisable loop), then
            // fix up the single incremented component, if this shard owns it.
            let base = out.len();
            for (tj, oj) in trow.iter_mut().zip(orow.iter_mut()) {
                let m = (*tj).max(*oj);
                *tj = m;
                *oj = m;
                out.push(m);
            }
            if ev.c_shard == self.shard {
                let local_c = ev.c_local as usize;
                let m = trow[local_c] + 1;
                trow[local_c] = m;
                orow[local_c] = m;
                out[base + local_c] = m;
            }
        }
    }

    /// Hands the slice rows to the router for a repartition migration,
    /// leaving the shard empty (it will be re-seeded by [`restore`]).
    ///
    /// [`restore`]: ShardState::restore
    pub(crate) fn export(&mut self) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        (
            std::mem::take(&mut self.threads),
            std::mem::take(&mut self.objects),
        )
    }

    /// Replaces the slice rows with re-sliced state from the router.
    pub(crate) fn restore(&mut self, threads: Vec<Vec<u64>>, objects: Vec<Vec<u64>>) {
        self.threads = threads;
        self.objects = objects;
    }
}

/// Ensures `rows[index]` exists and holds at least `len` counters (new ones
/// are zero: a component no past event incremented).
fn grow_row(rows: &mut Vec<Vec<u64>>, index: usize, len: usize) {
    if index >= rows.len() {
        rows.resize_with(index + 1, Vec::new);
    }
    let row = &mut rows[index];
    if row.len() < len {
        row.resize(len, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_width_partitions_every_component_exactly_once() {
        for width in 0..40 {
            for shards in 1..10 {
                let total: usize = (0..shards).map(|s| local_width(width, s, shards)).sum();
                assert_eq!(total, width, "width {width} over {shards} shards");
                // Balanced: slice sizes differ by at most one.
                let sizes: Vec<_> = (0..shards).map(|s| local_width(width, s, shards)).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn striped_assignment_round_trips() {
        let shards = 3;
        let width = 8;
        for k in 0..width {
            let rec = EventRec::striped(0, 0, k as u32, shards as u32);
            let (shard, local) = (rec.c_shard as usize, rec.c_local as usize);
            assert!(local < local_width(width, shard, shards));
            assert_eq!(shard + local * shards, k, "k = shard + local * shards");
        }
    }

    #[test]
    fn single_shard_apply_is_the_whole_protocol() {
        // One shard owning everything must reproduce the sequential engine's
        // arithmetic exactly: increments on the event's component, max-merge
        // of thread and object rows.
        let mut s = ShardState::new(0);
        let mut out = Vec::new();
        let events = [
            EventRec::striped(0, 0, 0, 1),
            EventRec::striped(1, 0, 0, 1),
            EventRec::striped(0, 1, 1, 1),
        ];
        s.apply(2, &events, &mut out);
        assert_eq!(out, vec![1, 0, 2, 0, 1, 1]);
    }

    #[test]
    fn shard_without_components_emits_nothing() {
        let mut s = ShardState::new(3);
        let mut out = Vec::new();
        s.apply(0, &[EventRec::striped(0, 0, 0, 4)], &mut out);
        assert!(out.is_empty(), "a shard with ln = 0 owns nothing");
    }

    #[test]
    fn two_shard_slices_merge_to_the_single_shard_protocol() {
        // The N-sharded apply-and-merge decomposition is the same protocol
        // as one shard owning everything; check a hand-merged 2-shard run.
        let raw = [(0, 0, 0), (1, 0, 0), (1, 1, 2), (0, 1, 1)];
        let width = 3;
        let mut whole = Vec::new();
        let one: Vec<EventRec> = raw
            .iter()
            .map(|&(t, o, c)| EventRec::striped(t, o, c, 1))
            .collect();
        ShardState::new(0).apply(width, &one, &mut whole);

        let two: Vec<EventRec> = raw
            .iter()
            .map(|&(t, o, c)| EventRec::striped(t, o, c, 2))
            .collect();
        let mut bufs = [Vec::new(), Vec::new()];
        for (s, buf) in bufs.iter_mut().enumerate() {
            ShardState::new(s).apply(local_width(width, s, 2), &two, buf);
        }
        for i in 0..raw.len() {
            for k in 0..width {
                let ln = local_width(width, k % 2, 2);
                assert_eq!(
                    whole[i * width + k],
                    bufs[k % 2][i * ln + k / 2],
                    "event {i}, component {k}"
                );
            }
        }
    }

    #[test]
    fn width_growth_between_chunks_pads_with_zeros() {
        let mut s = ShardState::new(0);
        let mut out = Vec::new();
        // Width 1 over 2 shards: shard 0 owns component 0.
        s.apply(1, &[EventRec::striped(0, 0, 0, 2)], &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        // Width 3: shard 0 now owns components 0 and 2; component 2 starts
        // at zero for the existing thread/object rows.
        s.apply(2, &[EventRec::striped(0, 0, 2, 2)], &mut out);
        assert_eq!(out, vec![1, 1], "component 0 carried over, 2 incremented");
    }

    #[test]
    fn export_and_restore_round_trip_the_slice() {
        let mut s = ShardState::new(0);
        let mut out = Vec::new();
        s.apply(2, &[EventRec::striped(0, 1, 0, 1)], &mut out);
        let (threads, objects) = s.export();
        assert_eq!(threads[0], vec![1, 0]);
        assert_eq!(objects[1], vec![1, 0]);
        let mut fresh = ShardState::new(0);
        fresh.restore(threads, objects);
        out.clear();
        fresh.apply(2, &[EventRec::striped(0, 1, 1, 1)], &mut out);
        assert_eq!(out, vec![1, 1], "loaded state continues the protocol");
    }
}
