//! Pluggable component-to-shard assignment: modulo striping (the parity
//! default) and a locality-aware greedy partitioner over the observed
//! component-interaction graph.
//!
//! The protocol is componentwise independent (see the `slicing` module), so
//! *which* shard owns a component can never change a stamp value — it only
//! changes which worker computes it and how much cross-shard merge traffic
//! the router pays.  That freedom is the whole contract: an assignment may
//! permute ownership arbitrarily (and re-permute it mid-run, with state
//! migration), but it must always be a bijection `component -> (shard,
//! local index)` covering `0..width`, and it must never touch values.
//! Conformance oracle 10 pins the consequence: partitioned sharding equals
//! modulo sharding bit-for-bit on the same interleaving.
//!
//! The partitioner is a two-stage greedy multilevel scheme in the spirit of
//! the classic edge-coarsening partitioners: (1) coarsen — walk interaction
//! edges in descending weight order, merging the endpoints' groups when the
//! union stays under the per-shard capacity, so components that co-occur in
//! events coalesce; (2) pack — place groups heaviest-first onto the
//! currently lightest shard.  Both stages are deterministic (ties break on
//! the smaller component index / shard index), so a repartition is
//! reproducible from the same observed graph.

use std::collections::HashMap;

/// How the sharded engine maps clock components onto shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Component `k` lives on shard `k % N` at local index `k / N` — the
    /// historical striping; balanced by construction and closed-form, so
    /// components added mid-run never move existing slice data.
    #[default]
    Modulo,
    /// Locality-aware placement: the engine records which components
    /// co-occur in events and `ShardedEngine::repartition` regroups
    /// components so interacting ones land on the same shard.  New
    /// components join the lightest shard until the next repartition.
    Partitioned,
}

/// The materialised bijection `component -> (shard, local index)` plus its
/// inverse, shared by the router's event records, the reply merge, and
/// state migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AssignmentTable {
    mode: ShardAssignment,
    shards: usize,
    /// Component `k` lives on shard `shard_of[k]` ...
    shard_of: Vec<u32>,
    /// ... at local index `local_of[k]`.
    local_of: Vec<u32>,
    /// Inverse: `globals[s][j]` is the global component at local index `j`
    /// of shard `s`.
    globals: Vec<Vec<u32>>,
}

impl AssignmentTable {
    /// The modulo table over `width` components.
    pub(crate) fn modulo(width: usize, shards: usize, mode: ShardAssignment) -> Self {
        let mut table = AssignmentTable {
            mode,
            shards,
            shard_of: Vec::new(),
            local_of: Vec::new(),
            globals: vec![Vec::new(); shards],
        };
        for _ in 0..width {
            table.push_component();
        }
        table
    }

    pub(crate) fn width(&self) -> usize {
        self.shard_of.len()
    }

    /// Components shard `s` currently owns.
    pub(crate) fn ln(&self, shard: usize) -> usize {
        self.globals[shard].len()
    }

    pub(crate) fn shard_of(&self, component: u32) -> u32 {
        self.shard_of[component as usize]
    }

    pub(crate) fn local_of(&self, component: u32) -> u32 {
        self.local_of[component as usize]
    }

    pub(crate) fn globals(&self, shard: usize) -> &[u32] {
        &self.globals[shard]
    }

    /// Registers the next component (global index `width()`): modulo keeps
    /// the closed-form stripe; partitioned placement appends to the
    /// currently lightest shard (ties to the lowest shard index).
    pub(crate) fn push_component(&mut self) {
        let k = self.shard_of.len() as u32;
        let shard = match self.mode {
            ShardAssignment::Modulo => k as usize % self.shards,
            ShardAssignment::Partitioned => (0..self.shards)
                .min_by_key(|&s| self.globals[s].len())
                .unwrap_or(0),
        };
        self.shard_of.push(shard as u32);
        self.local_of.push(self.globals[shard].len() as u32);
        self.globals[shard].push(k);
    }

    /// Rebuilds the table from a greedy partition of the interaction graph,
    /// keeping the width.  Returns `false` (leaving the table untouched)
    /// when the partition reproduces the current placement.
    pub(crate) fn repartition(&mut self, graph: &InteractionGraph) -> bool {
        let width = self.width();
        let groups = graph.partition(width, self.shards);
        let mut globals: Vec<Vec<u32>> = vec![Vec::new(); self.shards];
        // Pack heaviest-first onto the lightest shard; within a shard keep
        // ascending global order so the layout is canonical.
        for group in &groups {
            let lightest = (0..self.shards)
                .min_by_key(|&s| globals[s].len())
                .unwrap_or(0);
            globals[lightest].extend_from_slice(group);
        }
        for shard in &mut globals {
            shard.sort_unstable();
        }
        if globals == self.globals {
            return false;
        }
        let mut shard_of = vec![0u32; width];
        let mut local_of = vec![0u32; width];
        for (s, shard) in globals.iter().enumerate() {
            for (j, &k) in shard.iter().enumerate() {
                shard_of[k as usize] = s as u32;
                local_of[k as usize] = j as u32;
            }
        }
        self.shard_of = shard_of;
        self.local_of = local_of;
        self.globals = globals;
        true
    }
}

/// The observed component-interaction graph: an undirected multigraph where
/// the weight of edge `{a, b}` counts events whose thread component and
/// object component were `a` and `b`.
#[derive(Debug, Clone, Default)]
pub(crate) struct InteractionGraph {
    edges: HashMap<(u32, u32), u64>,
}

impl InteractionGraph {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one co-occurrence of two components in an event.
    pub(crate) fn record(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += 1;
    }

    #[cfg(test)]
    pub(crate) fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Greedy coarsening into groups of interacting components, each no
    /// larger than one shard's capacity `ceil(width / shards)`.  Singleton
    /// components (never observed interacting) come out as their own
    /// groups.  Deterministic; groups are returned heaviest-first.
    fn partition(&self, width: usize, shards: usize) -> Vec<Vec<u32>> {
        let cap = width.div_ceil(shards).max(1);
        let mut parent: Vec<u32> = (0..width as u32).collect();
        let mut size = vec![1u32; width];
        fn root(parent: &mut [u32], mut k: u32) -> u32 {
            while parent[k as usize] != k {
                let up = parent[parent[k as usize] as usize];
                parent[k as usize] = up;
                k = up;
            }
            k
        }
        let mut edges: Vec<(&(u32, u32), &u64)> = self
            .edges
            .iter()
            .filter(|((a, b), _)| (*a as usize) < width && (*b as usize) < width)
            .collect();
        edges.sort_unstable_by(|(ka, wa), (kb, wb)| wb.cmp(wa).then(ka.cmp(kb)));
        for ((a, b), _) in edges {
            let (ra, rb) = (root(&mut parent, *a), root(&mut parent, *b));
            if ra == rb || size[ra as usize] + size[rb as usize] > cap as u32 {
                continue;
            }
            // Union by canonical root (the smaller index) so the grouping
            // is independent of edge processing details.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi as usize] = lo;
            size[lo as usize] += size[hi as usize];
        }
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for k in 0..width as u32 {
            let r = root(&mut parent, k);
            members.entry(r).or_default().push(k);
        }
        let mut groups: Vec<Vec<u32>> = members.into_values().collect();
        groups.sort_unstable_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(table: &AssignmentTable, width: usize, shards: usize) {
        let mut seen = vec![false; width];
        for s in 0..shards {
            for (j, &k) in table.globals(s).iter().enumerate() {
                assert_eq!(table.shard_of(k), s as u32);
                assert_eq!(table.local_of(k), j as u32);
                assert!(!seen[k as usize], "component {k} owned twice");
                seen[k as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every component owned");
    }

    #[test]
    fn modulo_table_reproduces_the_historical_stripe() {
        for (width, shards) in [(0, 1), (1, 1), (7, 3), (8, 3), (64, 8)] {
            let t = AssignmentTable::modulo(width, shards, ShardAssignment::Modulo);
            assert_bijection(&t, width, shards);
            for k in 0..width as u32 {
                assert_eq!(t.shard_of(k), k % shards as u32);
                assert_eq!(t.local_of(k), k / shards as u32);
            }
            let total: usize = (0..shards).map(|s| t.ln(s)).sum();
            assert_eq!(total, width);
        }
    }

    #[test]
    fn partitioned_growth_appends_to_the_lightest_shard() {
        let mut t = AssignmentTable::modulo(0, 3, ShardAssignment::Partitioned);
        for _ in 0..7 {
            t.push_component();
        }
        assert_bijection(&t, 7, 3);
        let sizes: Vec<usize> = (0..3).map(|s| t.ln(s)).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn repartition_groups_interacting_components_together() {
        // Components {0,5} and {1,4} interact heavily; {2,3} lightly.
        let mut g = InteractionGraph::new();
        for _ in 0..10 {
            g.record(0, 5);
            g.record(1, 4);
        }
        g.record(2, 3);
        g.record(5, 0 /* order-insensitive */);
        let mut t = AssignmentTable::modulo(6, 3, ShardAssignment::Partitioned);
        assert!(t.repartition(&g));
        assert_bijection(&t, 6, 3);
        assert_eq!(t.shard_of(0), t.shard_of(5), "heavy pair colocated");
        assert_eq!(t.shard_of(1), t.shard_of(4));
        assert_eq!(t.shard_of(2), t.shard_of(3));
        // Capacity respected: ceil(6/3) = 2 per shard.
        for s in 0..3 {
            assert_eq!(t.ln(s), 2);
        }
        // Same graph again: the canonical layout is stable.
        assert!(!t.repartition(&g), "second repartition is a no-op");
    }

    #[test]
    fn capacity_caps_group_size_and_singletons_survive() {
        // A clique over 0..4 with width 4 over 2 shards: cap 2 forbids one
        // giant group; every shard ends with exactly 2 components.
        let mut g = InteractionGraph::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.record(a, b);
            }
        }
        let mut t = AssignmentTable::modulo(4, 2, ShardAssignment::Partitioned);
        t.repartition(&g);
        assert_bijection(&t, 4, 2);
        assert_eq!(t.ln(0), 2);
        assert_eq!(t.ln(1), 2);
        // Edges referencing components beyond the width are ignored.
        g.record(100, 101);
        assert!(g.edge_count() >= 7);
        t.repartition(&g);
        assert_bijection(&t, 4, 2);
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = InteractionGraph::new();
        g.record(3, 3);
        assert_eq!(g.edge_count(), 0);
    }
}
