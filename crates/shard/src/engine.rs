//! The sharded timestamping engine.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use mvc_clock::{Component, ComponentMap, VectorTimestamp};
use mvc_core::{TimestampError, TimestampReport, Timestamper};
use mvc_trace::{ObjectId, ThreadId};

use crate::assignment::{AssignmentTable, InteractionGraph, ShardAssignment};
use crate::fused::FusedState;
use crate::slicing::EventRec;
use crate::worker::{spawn, Chunk, Reply, WorkerMsg};

/// Events per chunk: the granularity at which batches are broadcast to the
/// shards and merged back.  Large enough to amortise one channel round-trip
/// per shard over thousands of events, small enough that the merge stage
/// pipelines with the shards instead of waiting for the whole batch.
pub(crate) const CHUNK_EVENTS: usize = 4096;

/// How many chunks may be in flight (sent to the shards but not yet merged)
/// at once: deep enough that the merge never starves the workers, shallow
/// enough that reply queues hold O(PIPELINE_CHUNKS × width × CHUNK_EVENTS)
/// slice values instead of the whole batch.
pub(crate) const PIPELINE_CHUNKS: usize = 4;

use crate::fused::NO_COMPONENT;

/// How a [`ShardedEngine`] executes its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardExecutor {
    /// All shards run fused on the caller's thread: one full-width pass per
    /// event, no queues, no slice buffers, no merge.  On a single CPU there
    /// is nothing to overlap, so this is both the correct and the fastest
    /// execution of an N-shard engine — and it substantially outruns the
    /// sequential engine, because the batch path routes through dense
    /// tables and allocates once per stamp instead of three times.  The
    /// stamps are identical to the threaded executor's; only scheduling and
    /// internal layout differ.
    Inline,
    /// Every shard is a dedicated worker thread fed by its own event queue
    /// (see the `worker` module); the caller's thread routes, merges,
    /// and overlaps with the shards.  The right choice whenever more than
    /// one CPU is available.
    Threads,
}

impl ShardExecutor {
    /// Picks the executor matching the machine: [`Threads`] when more than
    /// one CPU is available, [`Inline`] otherwise.
    ///
    /// [`Threads`]: ShardExecutor::Threads
    /// [`Inline`]: ShardExecutor::Inline
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => ShardExecutor::Threads,
            _ => ShardExecutor::Inline,
        }
    }
}

/// Handles into the process-global metrics registry, resolved once per
/// engine. All recording is chunk-granular (a chunk is up to
/// [`CHUNK_EVENTS`] events), so the threaded executor pays a few `Relaxed`
/// atomics per chunk round-trip and nothing per event. Names are
/// catalogued in `docs/OBSERVABILITY.md`.
#[derive(Debug)]
struct EngineMetrics {
    /// `shard.chunk_ns` (histogram, ns): router-side latency of collecting
    /// one chunk's replies from every shard.
    chunk_ns: mvc_obs::Histogram,
    /// `shard.inflight_chunks` (gauge, chunks): chunks broadcast to the
    /// workers but not yet merged, sampled per merge step (bounded by
    /// [`PIPELINE_CHUNKS`]).
    inflight_chunks: mvc_obs::Gauge,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        let registry = mvc_obs::global();
        Self {
            chunk_ns: registry.histogram("shard.chunk_ns"),
            inflight_chunks: registry.gauge("shard.inflight_chunks"),
        }
    }
}

#[derive(Debug)]
enum Backend {
    Inline {
        /// All shards fused into one full-width state: on a single thread
        /// there is nothing to overlap, so the fastest execution of an
        /// N-shard engine is the one pass with no slice buffers and no
        /// merge.  Bit-identical to the threaded slices (slicing is exact
        /// for every shard count, including one).
        state: FusedState,
    },
    Threads {
        inputs: Vec<Sender<WorkerMsg>>,
        replies: Vec<Receiver<Reply>>,
        handles: Vec<JoinHandle<()>>,
    },
}

/// The sharded counterpart of
/// [`TimestampingEngine`](mvc_core::TimestampingEngine): the same incremental
/// mixed-vector-clock protocol, with the clock's components divided across
/// `N` shards that each own their slice of every per-thread / per-object
/// vector (see the `slicing` module).  Which shard owns which component is
/// a pluggable [`ShardAssignment`]: modulo striping by default, or a
/// locality-aware partition of the observed component-interaction graph
/// ([`ShardedEngine::repartition`]) — stamps are bit-identical either way,
/// because the protocol is componentwise independent.
///
/// The engine implements [`Timestamper`], so every existing driver —
/// [`replay`](mvc_core::replay), `TraceSession::live`, the benches, the
/// `mvc-eval` CLI — picks it up unchanged.  Throughput comes from the batch
/// path ([`Timestamper::observe_batch`]): a batch is routed once, broadcast
/// to the shards in chunks, processed slice-parallel, and merged back in
/// arrival order.  Observing single events works and is bit-identical, but
/// pays one full fan-out per event; drive the engine with batches.
///
/// ```
/// use mvc_core::{replay, Timestamper, TimestampingEngine};
/// use mvc_shard::ShardedEngine;
/// use mvc_clock::Component;
/// use mvc_trace::{ThreadId, ObjectId, WorkloadBuilder};
///
/// let c = WorkloadBuilder::new(8, 8).operations(400).seed(7).build();
/// let mut map = mvc_clock::ComponentMap::new();
/// for t in 0..8 {
///     map.push(Component::Thread(ThreadId(t)));
/// }
/// let mut sharded = ShardedEngine::with_components(map.clone(), 4);
/// let mut sequential = TimestampingEngine::with_components(map);
/// let a = replay(&mut sharded, &c).unwrap();
/// let b = replay(&mut sequential, &c).unwrap();
/// assert_eq!(a.timestamps, b.timestamps); // bit-for-bit
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    /// Process-global metric handles (resolved once, recorded per chunk).
    metrics: EngineMetrics,
    components: ComponentMap,
    /// Dense thread → component-index table (`NO_COMPONENT` = none); the
    /// router's replacement for the `ComponentMap`'s hash lookups on the
    /// per-event hot path.
    thread_comp: Vec<u32>,
    /// Dense object → component-index table.
    object_comp: Vec<u32>,
    shards: usize,
    /// The requested assignment policy (recorded for reports; the live
    /// mapping is `table`).
    assignment: ShardAssignment,
    /// The live component → (shard, local index) bijection.
    table: AssignmentTable,
    /// The observed component-interaction graph [`ShardedEngine::repartition`]
    /// partitions; `Some` iff the assignment is
    /// [`ShardAssignment::Partitioned`].
    interactions: Option<InteractionGraph>,
    backend: Backend,
    events_observed: usize,
}

impl ShardedEngine {
    /// Creates an engine with no components over `shards` shards (clamped to
    /// at least 1), with the executor picked by [`ShardExecutor::auto`].
    pub fn new(shards: usize) -> Self {
        Self::with_components(ComponentMap::new(), shards)
    }

    /// Creates an engine pre-loaded with a component map (e.g. one computed
    /// by the offline optimizer), with the executor picked by
    /// [`ShardExecutor::auto`].
    pub fn with_components(components: ComponentMap, shards: usize) -> Self {
        Self::with_executor(components, shards, ShardExecutor::auto())
    }

    /// Creates an engine with an explicit executor.
    ///
    /// The executor affects scheduling only — the stamp stream is identical
    /// either way (conformance oracle 6 checks all executors against the
    /// sequential engine).
    pub fn with_executor(components: ComponentMap, shards: usize, executor: ShardExecutor) -> Self {
        Self::with_assignment(components, shards, executor, ShardAssignment::default())
    }

    /// Creates an engine with an explicit executor and shard-assignment
    /// policy.
    ///
    /// Like the executor, the assignment affects placement only — the
    /// protocol is componentwise independent, so the stamp stream is
    /// bit-identical under any assignment (conformance oracle 10).
    pub fn with_assignment(
        components: ComponentMap,
        shards: usize,
        executor: ShardExecutor,
        assignment: ShardAssignment,
    ) -> Self {
        let shards = shards.max(1);
        let backend = match executor {
            ShardExecutor::Inline => Backend::Inline {
                state: FusedState::new(),
            },
            ShardExecutor::Threads => {
                let mut inputs = Vec::with_capacity(shards);
                let mut replies = Vec::with_capacity(shards);
                let mut handles = Vec::with_capacity(shards);
                for s in 0..shards {
                    let (to_shard, input) = unbounded();
                    let (output, reply) = unbounded();
                    handles.push(spawn(s, input, output));
                    inputs.push(to_shard);
                    replies.push(reply);
                }
                Backend::Threads {
                    inputs,
                    replies,
                    handles,
                }
            }
        };
        let mut engine = ShardedEngine {
            metrics: EngineMetrics::default(),
            components: ComponentMap::new(),
            thread_comp: Vec::new(),
            object_comp: Vec::new(),
            shards,
            assignment,
            table: AssignmentTable::modulo(0, shards, assignment),
            interactions: (assignment == ShardAssignment::Partitioned).then(InteractionGraph::new),
            backend,
            events_observed: 0,
        };
        for &component in components.components() {
            engine.add_component(component);
        }
        engine
    }

    /// The executor this engine runs on.
    pub fn executor(&self) -> ShardExecutor {
        match self.backend {
            Backend::Inline { .. } => ShardExecutor::Inline,
            Backend::Threads { .. } => ShardExecutor::Threads,
        }
    }

    /// The logical shard count: how many slices the threaded executor
    /// divides the components across.  The inline executor fuses all shards
    /// into one pass, so there this only records what was requested.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard-assignment policy this engine places components with.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// Recomputes the component placement from the interactions observed so
    /// far, migrating worker slice state to the new layout.  Returns `true`
    /// if the placement changed.
    ///
    /// Only meaningful under [`ShardAssignment::Partitioned`] (a modulo
    /// engine observes no interactions and returns `false`).  Safe at any
    /// batch boundary: the stamp stream is unaffected — the protocol is
    /// componentwise independent, so moving a component only changes which
    /// worker computes its values (conformance oracle 10 checks a mid-run
    /// repartition against the modulo engine bit-for-bit).
    pub fn repartition(&mut self) -> bool {
        let mut new_table = self.table.clone();
        match &self.interactions {
            Some(graph) if new_table.repartition(graph) => {}
            _ => return false,
        }
        if let Backend::Threads {
            inputs, replies, ..
        } = &self.backend
        {
            // Export every shard's slice rows (the reply channels are FIFO
            // and no chunks are in flight between batches, so the next
            // reply on each channel is the exported state).
            let width = self.table.width();
            let mut full_threads: Vec<Vec<u64>> = Vec::new();
            let mut full_objects: Vec<Vec<u64>> = Vec::new();
            for (s, (input, reply)) in inputs.iter().zip(replies).enumerate() {
                input
                    .send(WorkerMsg::Export)
                    // mvc-lint: allow(hot-path-panic) — workers only exit after their input channel is dropped, which happens in our Drop
                    .expect("shard worker is alive");
                // mvc-lint: allow(hot-path-panic) — a worker replies once per export or the process is already panicking; see worker.rs
                match reply.recv().expect("shard worker reply") {
                    Reply::State { threads, objects } => {
                        widen_rows(&mut full_threads, &threads, self.table.globals(s), width);
                        widen_rows(&mut full_objects, &objects, self.table.globals(s), width);
                    }
                    Reply::Slices(_) => unreachable!("export is answered with state"),
                }
            }
            // Re-slice under the new placement and load it back.
            for (s, input) in inputs.iter().enumerate() {
                input
                    .send(WorkerMsg::Load {
                        threads: slice_rows(&full_threads, new_table.globals(s)),
                        objects: slice_rows(&full_objects, new_table.globals(s)),
                    })
                    // mvc-lint: allow(hot-path-panic) — workers only exit after their input channel is dropped, which happens in our Drop
                    .expect("shard worker is alive");
            }
        }
        // The inline executor's fused state is full-width and
        // assignment-agnostic: swapping the table is the whole migration.
        self.table = new_table;
        true
    }

    /// The current component map.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Number of operations observed so far.
    pub fn events_observed(&self) -> usize {
        self.events_observed
    }

    /// Adds a component (if not already present), returning its index.
    ///
    /// The new component is placed by the engine's [`ShardAssignment`]
    /// (shard `index % shard_count` under modulo, the lightest shard under
    /// partitioned); no existing slice data moves (see the `slicing`
    /// module).
    pub fn add_component(&mut self, component: Component) -> usize {
        let index = self.components.push(component);
        // mvc-lint: allow(hot-path-panic) — a clock wider than u32::MAX components would exhaust memory long before this fires
        let index_u32 = u32::try_from(index).expect("clock width fits in u32");
        while self.table.width() <= index {
            self.table.push_component();
        }
        match component {
            Component::Thread(t) => set_dense(&mut self.thread_comp, t.index(), index_u32),
            Component::Object(o) => set_dense(&mut self.object_comp, o.index(), index_u32),
        }
        index
    }

    /// Returns `true` if an operation of `thread` on `object` could be
    /// timestamped right now (at least one endpoint has a component).
    pub fn covers(&self, thread: ThreadId, object: ObjectId) -> bool {
        self.route(thread, object).is_some()
    }

    /// The component the protocol increments for an operation: the object's
    /// component if the object is in the clock, otherwise the thread's —
    /// the same preference as the sequential engine.
    fn route(&self, thread: ThreadId, object: ObjectId) -> Option<u32> {
        let oc = dense_get(&self.object_comp, object.index());
        if oc != NO_COMPONENT {
            return Some(oc);
        }
        let tc = dense_get(&self.thread_comp, thread.index());
        (tc != NO_COMPONENT).then_some(tc)
    }

    /// The batch pipeline: route → broadcast in chunks → apply per shard →
    /// order-preserving merge (the inline executor routes and applies in a
    /// single fused pass instead).  See the crate docs for the merge
    /// invariant.
    fn process_batch(
        &mut self,
        events: &[(ThreadId, ObjectId)],
        out: &mut Vec<VectorTimestamp>,
    ) -> Result<(), TimestampError> {
        let width = self.components.len();
        // Under the partitioned assignment, record which components
        // co-occur in events — one cheap pre-pass per batch feeding the
        // graph `repartition` coarsens.  Modulo engines skip this entirely.
        if let Some(graph) = self.interactions.as_mut() {
            for &(thread, object) in events {
                let tc = dense_get(&self.thread_comp, thread.index());
                let oc = dense_get(&self.object_comp, object.index());
                if tc != NO_COMPONENT && oc != NO_COMPONENT {
                    graph.record(tc, oc);
                }
            }
        }
        if let Backend::Inline { state } = &mut self.backend {
            let before = out.len();
            let failure =
                state.apply_routed(width, events, &self.thread_comp, &self.object_comp, out);
            self.events_observed += out.len() - before;
            return match failure {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        // Route the batch's longest coverable prefix.  Coverage cannot change
        // inside the batch (`add_component` needs `&mut self`), so checking
        // up front is equivalent to the sequential engine's per-event check.
        let mut recs = Vec::with_capacity(events.len());
        let mut failure = None;
        for &(thread, object) in events {
            match self.route(thread, object) {
                Some(c) => recs.push(EventRec {
                    t: thread.index() as u32,
                    o: object.index() as u32,
                    c,
                    c_shard: self.table.shard_of(c),
                    c_local: self.table.local_of(c),
                }),
                None => {
                    failure = Some(TimestampError::Uncovered { thread, object });
                    break;
                }
            }
        }
        let n = recs.len();
        self.events_observed += n;
        out.reserve(n);
        match &mut self.backend {
            Backend::Inline { .. } => unreachable!("handled above"),
            Backend::Threads {
                inputs, replies, ..
            } => {
                let windows: Vec<(usize, usize)> = (0..n)
                    .step_by(CHUNK_EVENTS)
                    .map(|start| (start, (start + CHUNK_EVENTS).min(n)))
                    .collect();
                // Keep a bounded window of chunks in flight: the shards work
                // ahead of the merge, but the reply queues never buffer more
                // than PIPELINE_CHUNKS chunks of slice data — without the
                // bound, shards that outrun the merge would transiently hold
                // the whole batch's slices (O(events × width)) in memory.
                let shared = Arc::new(recs);
                let mut sent = 0;
                let mut bufs: Vec<Vec<u64>> = Vec::with_capacity(self.shards);
                for (merged, &(start, end)) in windows.iter().enumerate() {
                    while sent < windows.len() && sent < merged + PIPELINE_CHUNKS {
                        let (s, e) = windows[sent];
                        for (shard, input) in inputs.iter().enumerate() {
                            input
                                .send(WorkerMsg::Chunk(Chunk {
                                    ln: self.table.ln(shard),
                                    events: Arc::clone(&shared),
                                    start: s,
                                    end: e,
                                }))
                                // mvc-lint: allow(hot-path-panic) — workers only exit after their input channel is dropped, which happens in our Drop
                                .expect("shard worker is alive");
                        }
                        sent += 1;
                    }
                    self.metrics.inflight_chunks.set((sent - merged) as i64);
                    bufs.clear();
                    let chunk_span = self.metrics.chunk_ns.span();
                    for reply in replies.iter() {
                        // mvc-lint: allow(hot-path-panic) — a worker replies once per chunk or the process is already panicking; see worker.rs
                        match reply.recv().expect("shard worker reply") {
                            Reply::Slices(buf) => bufs.push(buf),
                            Reply::State { .. } => {
                                unreachable!("chunks are answered with slices")
                            }
                        }
                    }
                    chunk_span.stop();
                    merge_into(width, &self.table, &bufs, end - start, out);
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Timestamper for ShardedEngine {
    fn name(&self) -> &str {
        "sharded-engine"
    }

    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        let mut out = Vec::with_capacity(1);
        self.process_batch(&[(thread, object)], &mut out)?;
        // mvc-lint: allow(hot-path-panic) — process_batch's contract is one stamp per input event; one event in, one stamp out
        Ok(out.pop().expect("one stamp for one event"))
    }

    fn observe_batch(
        &mut self,
        events: &[(ThreadId, ObjectId)],
        out: &mut Vec<VectorTimestamp>,
    ) -> Result<(), TimestampError> {
        self.process_batch(events, out)
    }

    fn width(&self) -> usize {
        self.components.len()
    }

    fn finish(&self) -> TimestampReport {
        TimestampReport {
            name: "sharded-engine".to_owned(),
            events: self.events_observed,
            components: self.components.clone(),
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        if let Backend::Threads {
            inputs,
            replies,
            handles,
        } = &mut self.backend
        {
            // Dropping the senders lets every worker drain its queue and
            // exit; dropping the reply receivers first would also work, but
            // joining keeps thread teardown deterministic for tests.
            inputs.clear();
            replies.clear();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Merges one chunk's per-shard slice buffers into full-width timestamps,
/// in arrival order: component `table.globals(s)[j]` of event `i` is value
/// `i * table.ln(s) + j` of shard `s`'s buffer — the inverse of the
/// assignment bijection, for any assignment.
fn merge_into(
    width: usize,
    table: &AssignmentTable,
    bufs: &[Vec<u64>],
    n_events: usize,
    out: &mut Vec<VectorTimestamp>,
) {
    for i in 0..n_events {
        let mut v = vec![0u64; width];
        for (s, buf) in bufs.iter().enumerate() {
            let globals = table.globals(s);
            let base = i * globals.len();
            for (j, &k) in globals.iter().enumerate() {
                v[k as usize] = buf[base + j];
            }
        }
        out.push(VectorTimestamp::from_components(v));
    }
}

/// Scatter one shard's exported local-index rows into full-width rows
/// (repartition migration, gather side): local index `j` of shard rows maps
/// to global component `globals[j]`.
fn widen_rows(full: &mut Vec<Vec<u64>>, rows: &[Vec<u64>], globals: &[u32], width: usize) {
    if full.len() < rows.len() {
        full.resize_with(rows.len(), Vec::new);
    }
    for (full_row, row) in full.iter_mut().zip(rows) {
        if !row.is_empty() && full_row.len() < width {
            full_row.resize(width, 0);
        }
        // A row lazily padded short of this shard's ln simply contributes
        // fewer (all-zero) entries.
        for (j, &value) in row.iter().enumerate() {
            full_row[globals[j] as usize] = value;
        }
    }
}

/// Gather full-width rows back into one shard's local-index rows under a
/// new assignment (repartition migration, scatter side).  Rows never
/// touched stay empty (the worker re-creates them lazily).
fn slice_rows(full: &[Vec<u64>], globals: &[u32]) -> Vec<Vec<u64>> {
    full.iter()
        .map(|row| {
            if row.is_empty() {
                Vec::new()
            } else {
                globals
                    .iter()
                    .map(|&k| row.get(k as usize).copied().unwrap_or(0))
                    .collect()
            }
        })
        .collect()
}

fn dense_get(table: &[u32], index: usize) -> u32 {
    table.get(index).copied().unwrap_or(NO_COMPONENT)
}

fn set_dense(table: &mut Vec<u32>, index: usize, value: u32) {
    if index >= table.len() {
        table.resize(index + 1, NO_COMPONENT);
    }
    table[index] = value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_core::{replay, TimestampingEngine};
    use mvc_trace::WorkloadBuilder;

    fn thread_map(n: usize) -> ComponentMap {
        ComponentMap::all_threads(n)
    }

    fn parity_case(shards: usize, executor: ShardExecutor) {
        let c = WorkloadBuilder::new(6, 9).operations(700).seed(13).build();
        let map = {
            let mut m = ComponentMap::new();
            for t in 0..6 {
                m.push(Component::Thread(ThreadId(t)));
            }
            m.push(Component::Object(ObjectId(0)));
            m
        };
        let mut sharded = ShardedEngine::with_executor(map.clone(), shards, executor);
        let mut sequential = TimestampingEngine::with_components(map);
        let a = replay(&mut sharded, &c).unwrap();
        let b = replay(&mut sequential, &c).unwrap();
        assert_eq!(a.timestamps, b.timestamps);
        assert_eq!(a.report.events, b.report.events);
        assert_eq!(a.report.components, b.report.components);
    }

    #[test]
    fn inline_executor_matches_sequential_engine() {
        for shards in [1, 2, 3, 4, 8, 16] {
            parity_case(shards, ShardExecutor::Inline);
        }
    }

    #[test]
    fn threaded_executor_matches_sequential_engine() {
        for shards in [1, 2, 4] {
            parity_case(shards, ShardExecutor::Threads);
        }
    }

    #[test]
    fn batches_spanning_multiple_chunks_stay_ordered() {
        let ops = CHUNK_EVENTS * 2 + 37;
        let c = WorkloadBuilder::new(8, 8).operations(ops).seed(3).build();
        let map = thread_map(8);
        let mut sharded = ShardedEngine::with_executor(map.clone(), 4, ShardExecutor::Threads);
        let mut sequential = TimestampingEngine::with_components(map);
        let a = replay(&mut sharded, &c).unwrap();
        let b = replay(&mut sequential, &c).unwrap();
        assert_eq!(a.timestamps, b.timestamps);
        assert_eq!(sharded.events_observed(), ops);
    }

    #[test]
    fn uncovered_event_fails_after_the_stampable_prefix() {
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        let mut engine = ShardedEngine::with_executor(map, 2, ShardExecutor::Inline);
        let events = [
            (ThreadId(0), ObjectId(0)),
            (ThreadId(0), ObjectId(1)),
            (ThreadId(9), ObjectId(9)),
            (ThreadId(0), ObjectId(2)),
        ];
        let mut out = Vec::new();
        let err = engine.observe_batch(&events, &mut out).unwrap_err();
        assert_eq!(
            err,
            TimestampError::Uncovered {
                thread: ThreadId(9),
                object: ObjectId(9),
            }
        );
        assert_eq!(out.len(), 2);
        assert_eq!(engine.events_observed(), 2);
        // Recover exactly like the sequential engine: cover and resubmit.
        engine.add_component(Component::Object(ObjectId(9)));
        engine.observe_batch(&events[2..], &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(engine.events_observed(), 4);
    }

    #[test]
    fn mid_run_component_addition_widens_like_the_sequential_engine() {
        let c = WorkloadBuilder::new(5, 5).operations(300).seed(21).build();
        let half = 150;
        let events: Vec<_> = c.events().map(|e| (e.thread, e.object)).collect();
        let partial = ComponentMap::all_threads(5);
        let mut sharded = ShardedEngine::with_executor(partial.clone(), 4, ShardExecutor::Inline);
        let mut sequential = TimestampingEngine::with_components(partial);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        sharded.observe_batch(&events[..half], &mut a).unwrap();
        sequential.observe_batch(&events[..half], &mut b).unwrap();
        // The clock grows mid-run on both engines; old rows pad with zeros.
        for o in 0..5 {
            sharded.add_component(Component::Object(ObjectId(o)));
            sequential.add_component(Component::Object(ObjectId(o)));
        }
        sharded.observe_batch(&events[half..], &mut a).unwrap();
        sequential.observe_batch(&events[half..], &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(sharded.width(), 10);
        assert_eq!(sharded.components(), sequential.components());
    }

    #[test]
    fn single_observe_is_bit_identical_to_batching() {
        let c = WorkloadBuilder::new(4, 4).operations(60).seed(5).build();
        let map = thread_map(4);
        let mut one_by_one = ShardedEngine::with_executor(map.clone(), 3, ShardExecutor::Inline);
        let singles: Vec<_> = c
            .events()
            .map(|e| Timestamper::observe(&mut one_by_one, e.thread, e.object).unwrap())
            .collect();
        let mut batched = ShardedEngine::with_executor(map, 3, ShardExecutor::Inline);
        let run = replay(&mut batched, &c).unwrap();
        assert_eq!(singles, run.timestamps);
    }

    #[test]
    fn zero_shards_clamps_to_one_and_empty_engine_rejects() {
        let mut e = ShardedEngine::new(0);
        assert_eq!(e.shard_count(), 1);
        assert_eq!(e.width(), 0);
        assert!(!e.covers(ThreadId(0), ObjectId(0)));
        let err = Timestamper::observe(&mut e, ThreadId(0), ObjectId(0)).unwrap_err();
        assert!(matches!(err, TimestampError::Uncovered { .. }));
        assert_eq!(e.events_observed(), 0);
    }

    #[test]
    fn add_component_is_idempotent_and_object_preferred() {
        let mut e = ShardedEngine::with_executor(ComponentMap::new(), 2, ShardExecutor::Inline);
        let a = e.add_component(Component::Object(ObjectId(3)));
        let b = e.add_component(Component::Object(ObjectId(3)));
        assert_eq!(a, b);
        assert_eq!(e.width(), 1);
        e.add_component(Component::Thread(ThreadId(1)));
        // Object component preferred when both endpoints are covered,
        // exactly like the sequential engine.
        let stamp = Timestamper::observe(&mut e, ThreadId(1), ObjectId(3)).unwrap();
        assert_eq!(stamp.as_slice(), &[1, 0]);
    }

    #[test]
    fn finish_reports_name_events_and_components() {
        let map = thread_map(2);
        let mut e = ShardedEngine::with_executor(map.clone(), 2, ShardExecutor::Inline);
        Timestamper::observe(&mut e, ThreadId(0), ObjectId(0)).unwrap();
        let report = e.finish();
        assert_eq!(report.name, "sharded-engine");
        assert_eq!(report.events, 1);
        assert_eq!(report.components, map);
        assert_eq!(e.name(), "sharded-engine");
    }

    fn object_heavy_map(threads: usize, objects: usize) -> ComponentMap {
        let mut m = ComponentMap::new();
        for t in 0..threads {
            m.push(Component::Thread(ThreadId(t)));
        }
        for o in 0..objects {
            m.push(Component::Object(ObjectId(o)));
        }
        m
    }

    #[test]
    fn partitioned_assignment_matches_modulo_bit_for_bit() {
        let c = WorkloadBuilder::new(6, 10).operations(900).seed(29).build();
        let map = object_heavy_map(6, 10);
        for executor in [ShardExecutor::Inline, ShardExecutor::Threads] {
            for shards in [1, 2, 4] {
                let mut part = ShardedEngine::with_assignment(
                    map.clone(),
                    shards,
                    executor,
                    ShardAssignment::Partitioned,
                );
                let mut modulo = ShardedEngine::with_assignment(
                    map.clone(),
                    shards,
                    executor,
                    ShardAssignment::Modulo,
                );
                assert_eq!(part.assignment(), ShardAssignment::Partitioned);
                assert_eq!(modulo.assignment(), ShardAssignment::Modulo);
                let a = replay(&mut part, &c).unwrap();
                let b = replay(&mut modulo, &c).unwrap();
                assert_eq!(a.timestamps, b.timestamps, "{executor:?} × {shards} shards");
            }
        }
    }

    #[test]
    fn mid_run_repartition_leaves_the_stamp_stream_unchanged() {
        let c = WorkloadBuilder::new(6, 10)
            .operations(1200)
            .seed(31)
            .build();
        let events: Vec<_> = c.events().map(|e| (e.thread, e.object)).collect();
        let half = events.len() / 2;
        let map = object_heavy_map(6, 10);
        for executor in [ShardExecutor::Inline, ShardExecutor::Threads] {
            let mut part = ShardedEngine::with_assignment(
                map.clone(),
                4,
                executor,
                ShardAssignment::Partitioned,
            );
            let mut sequential = TimestampingEngine::with_components(map.clone());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            part.observe_batch(&events[..half], &mut a).unwrap();
            sequential.observe_batch(&events[..half], &mut b).unwrap();
            // Re-place components from the observed interaction graph; the
            // migration must carry every counter to its new owner.
            part.repartition();
            part.observe_batch(&events[half..], &mut a).unwrap();
            sequential.observe_batch(&events[half..], &mut b).unwrap();
            assert_eq!(a, b, "{executor:?}");
        }
    }

    #[test]
    fn repartition_is_a_noop_for_modulo_and_converges_for_partitioned() {
        let c = WorkloadBuilder::new(4, 6).operations(400).seed(17).build();
        let map = object_heavy_map(4, 6);
        let mut modulo = ShardedEngine::with_assignment(
            map.clone(),
            2,
            ShardExecutor::Inline,
            ShardAssignment::Modulo,
        );
        replay(&mut modulo, &c).unwrap();
        assert!(!modulo.repartition(), "modulo observes no interactions");
        let mut part = ShardedEngine::with_assignment(
            map,
            2,
            ShardExecutor::Inline,
            ShardAssignment::Partitioned,
        );
        replay(&mut part, &c).unwrap();
        if part.repartition() {
            // The layout is canonical, so repartitioning again from the same
            // graph changes nothing.
            assert!(!part.repartition(), "second repartition is stable");
        }
    }

    #[test]
    fn dropping_a_threaded_engine_joins_its_workers() {
        // Nothing to assert beyond "this terminates": Drop joins every
        // worker, so a hang here would fail the test by timeout.
        for _ in 0..3 {
            let map = thread_map(2);
            let mut e = ShardedEngine::with_executor(map, 4, ShardExecutor::Threads);
            Timestamper::observe(&mut e, ThreadId(0), ObjectId(0)).unwrap();
            assert_eq!(e.executor(), ShardExecutor::Threads);
        }
    }
}
