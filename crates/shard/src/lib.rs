//! Sharded timestamping runtime: multi-core event recording with an
//! order-preserving merge.
//!
//! The sequential [`TimestampingEngine`](mvc_core::TimestampingEngine)
//! processes one event at a time on one core, so the paper's online protocol
//! can never exceed single-core throughput no matter how fast the mechanisms
//! get.  This crate scales the *engine* out without changing a single stamp:
//! [`ShardedEngine`] divides the clock's components across `N` shards under
//! a pluggable [`ShardAssignment`] — modulo striping by default (component
//! `k` belongs to shard `k % N`), or a locality-aware partition of the
//! observed component-interaction graph — each shard owns its slice of
//! every per-thread and per-object mixed vector, and a merge stage
//! reassembles full-width timestamps in arrival order.
//!
//! # Why slicing is exact
//!
//! The mixed-clock update is componentwise independent (see the `slicing`
//! module): component `k` of an event's stamp depends only on component
//! `k` of the thread's and object's current vectors.  Every shard therefore
//! applies the *entire* event stream, in the one arrival order, to just its
//! slice — shards never exchange state, and the concatenation of their
//! slices is bit-for-bit the sequential engine's output.  Conformance
//! oracle 6 (`tests/conformance.rs`) proves this equality under proptest
//! over random workloads, shard counts 1/2/4/8, and mid-run component
//! additions.
//!
//! # The merge invariant
//!
//! A batch of events is cut into chunks (epochs).  For every chunk boundary
//! — the *watermark* — the following holds, and is what makes the merge
//! order-preserving:
//!
//! 1. **Same prefix everywhere.**  Every shard has applied exactly the
//!    events before the watermark, in arrival order, to its slice.  Chunks
//!    reach each shard over a FIFO queue and each shard processes its queue
//!    in order, so no shard can run ahead or behind within a chunk.
//! 2. **Stamps complete in order.**  The merge emits event `i`'s timestamp
//!    only once every shard's slice for `i`'s chunk has arrived, and
//!    component `k` of that timestamp is read from its owning shard's
//!    buffer at `k`'s local index (under modulo striping, shard `k % N`,
//!    local index `k / N`) — each component is produced by exactly one
//!    shard, whatever the assignment.
//! 3. **Program and chain order are preserved.**  Because all shards see
//!    the single arrival order (the faithful interleaving
//!    [`TraceSession`](../mvc_runtime/struct.TraceSession.html)'s
//!    order-preserving ingest merge produces from the per-thread segmented
//!    buffers and the serialization tickets drawn under each object's
//!    lock), per-thread program order and per-object chain order in the
//!    output equal the sequential engine's — not just up to equivalence,
//!    but as the identical stamp sequence.
//!
//! The engine implements [`Timestamper`](mvc_core::Timestamper), so
//! `TraceSession::live`, [`replay`](mvc_core::replay), `mvc-bench`, and the
//! `mvc-eval` CLI pick it up with zero call-site changes; batches fan out,
//! single observations still work.  [`ShardExecutor`] selects between
//! dedicated worker threads (multi-core) and an inline executor
//! (single-CPU hosts, tests) — the choice affects scheduling only, never
//! stamps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod engine;
pub(crate) mod fused;
pub(crate) mod slicing;
pub(crate) mod worker;

pub use assignment::ShardAssignment;
pub use engine::{ShardExecutor, ShardedEngine};
