//! The inline executor's fused state: all shards collapsed into one
//! full-width pass.
//!
//! On a single thread there is nothing to overlap, so the fastest execution
//! of an N-shard engine is one pass that produces finished timestamps
//! directly — no slice buffers, no merge, no queues.  Rows are kept in the
//! chunked wide-clock format ([`mvc_clock::chunked`]): one chunk-padded row
//! per thread and per object with a nonzero-chunk bitmap, so the per-event
//! merge and write-back cost tracks the chunks an event actually touches,
//! not the clock width — at width 64 that is the same single-chunk loop as
//! before, and at width 4096 a clustered workload touches ~1 of 64 chunks.
//!
//! Bit-for-bit parity with the sliced/threaded path (and with the
//! sequential engine) is enforced by the unit tests here, by the engine's
//! executor-parity tests, and by conformance oracles 6 and 10.

use mvc_clock::chunked::{self, ChunkedRow};
use mvc_clock::VectorTimestamp;
use mvc_core::TimestampError;
use mvc_trace::{ObjectId, ThreadId};

#[cfg(test)]
use crate::slicing::EventRec;

/// Sentinel for "no component" in the router's dense lookup tables (shared
/// with the engine's router).
pub(crate) const NO_COMPONENT: u32 = u32::MAX;

/// The fused (single-slice, full-width) engine state.
#[derive(Debug, Default)]
pub(crate) struct FusedState {
    /// Per-thread chunked rows, padded to the clock width lazily.
    threads: Vec<ChunkedRow>,
    /// Per-object chunked rows.
    objects: Vec<ChunkedRow>,
}

impl FusedState {
    pub(crate) fn new() -> Self {
        FusedState::default()
    }

    /// Applies a batch of routed events in order, appending one finished
    /// timestamp per event to `out`.
    ///
    /// `width` is fixed for the whole batch (the router never grows the
    /// clock mid-batch); a width increase between batches pads rows with
    /// zeros on first touch, exactly like the sequential engine's lazy
    /// padding.  (The engine's hot path is [`apply_routed`]; this
    /// [`EventRec`]-based form exists for the parity tests against the
    /// sliced path.)
    ///
    /// [`apply_routed`]: FusedState::apply_routed
    #[cfg(test)]
    pub(crate) fn apply(
        &mut self,
        width: usize,
        events: &[EventRec],
        out: &mut Vec<VectorTimestamp>,
    ) {
        out.reserve(events.len());
        for ev in events {
            self.step(width, ev.t as usize, ev.o as usize, ev.c as usize, out);
        }
    }

    /// Routes and applies a raw event batch in one pass — the inline
    /// executor's hot path, which skips materialising routed [`EventRec`]s
    /// (those exist so a batch can be broadcast to worker shards).
    ///
    /// Stops at the first uncovered event and returns its error; stamps for
    /// the covered prefix have been appended, exactly like the chunked
    /// path.
    pub(crate) fn apply_routed(
        &mut self,
        width: usize,
        events: &[(ThreadId, ObjectId)],
        thread_comp: &[u32],
        object_comp: &[u32],
        out: &mut Vec<VectorTimestamp>,
    ) -> Option<TimestampError> {
        out.reserve(events.len());
        for &(thread, object) in events {
            let mut c = *object_comp.get(object.index()).unwrap_or(&NO_COMPONENT);
            if c == NO_COMPONENT {
                c = *thread_comp.get(thread.index()).unwrap_or(&NO_COMPONENT);
                if c == NO_COMPONENT {
                    return Some(TimestampError::Uncovered { thread, object });
                }
            }
            self.step(width, thread.index(), object.index(), c as usize, out);
        }
        None
    }

    /// One protocol step: stamp the event of thread `t` on object `o`,
    /// incrementing component `c` — the shared chunked write-back kernel:
    /// `T[t] = O[o] = e.v`, the paper's protocol verbatim, with both rows
    /// mutated in place and only the emitted stamp owned.
    #[inline]
    fn step(&mut self, width: usize, t: usize, o: usize, c: usize, out: &mut Vec<VectorTimestamp>) {
        grow(&mut self.threads, t);
        grow(&mut self.objects, o);
        let v = chunked::step(&mut self.threads[t], &mut self.objects[o], c, width);
        out.push(VectorTimestamp::from_components(v));
    }
}

/// Ensures `rows[id]` exists (rows pad themselves to the width lazily).
fn grow(rows: &mut Vec<ChunkedRow>, id: usize) {
    if id >= rows.len() {
        rows.resize_with(id + 1, ChunkedRow::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicing::ShardState;

    fn stamps_of(
        state: &mut FusedState,
        width: usize,
        events: &[EventRec],
    ) -> Vec<VectorTimestamp> {
        let mut out = Vec::new();
        state.apply(width, events, &mut out);
        out
    }

    #[test]
    fn fused_equals_single_shard_slicing() {
        let events = [
            EventRec::striped(0, 0, 0, 1),
            EventRec::striped(1, 0, 0, 1),
            EventRec::striped(1, 1, 2, 1),
            EventRec::striped(0, 1, 1, 1),
            EventRec::striped(2, 0, 0, 1),
        ];
        let width = 3;
        let fused = stamps_of(&mut FusedState::new(), width, &events);
        let mut sliced = ShardState::new(0);
        let mut flat = Vec::new();
        sliced.apply(width, &events, &mut flat);
        let expected: Vec<VectorTimestamp> = flat
            .chunks(width)
            .map(|c| VectorTimestamp::from_components(c.to_vec()))
            .collect();
        assert_eq!(fused, expected);
    }

    #[test]
    fn rows_persist_across_batches_and_pad_on_width_growth() {
        let mut state = FusedState::new();
        let a = stamps_of(&mut state, 1, &[EventRec::striped(0, 0, 0, 1)]);
        assert_eq!(a[0].as_slice(), &[1]);
        // Width grows between batches; the old rows pad with zeros.
        let b = stamps_of(
            &mut state,
            2,
            &[EventRec::striped(0, 1, 1, 1), EventRec::striped(0, 0, 0, 1)],
        );
        assert_eq!(b[0].as_slice(), &[1, 1], "carried counter plus new one");
        assert_eq!(b[1].as_slice(), &[2, 1], "object 0's row also persisted");
    }

    #[test]
    fn aliased_rows_within_a_batch_share_the_latest_stamp() {
        // Thread 0 and object 0 alias after the first event; a later event
        // of thread 0 on object 1 must read the updated row.
        let mut state = FusedState::new();
        let out = stamps_of(
            &mut state,
            2,
            &[
                EventRec::striped(0, 0, 0, 1),
                EventRec::striped(1, 0, 0, 1),
                EventRec::striped(0, 1, 1, 1),
            ],
        );
        assert_eq!(out[1].as_slice(), &[2, 0]);
        assert_eq!(out[2].as_slice(), &[1, 1], "thread 0 kept its own history");
    }
}
