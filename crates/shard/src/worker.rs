//! The threaded executor's shard workers.
//!
//! Each shard is one OS thread owning a [`ShardState`](crate::slicing) and
//! fed by its own message queue.  The router broadcasts every chunk (a
//! shared `Arc` of routed events plus a `start..end` window, so a whole
//! batch is one allocation no matter how many chunks it splits into) to
//! every shard; a shard applies the chunk to its slice and sends the
//! resulting flat buffer back on its private reply channel.  Around
//! repartitions the router additionally sends [`WorkerMsg::Export`] /
//! [`WorkerMsg::Load`] to migrate slice state between assignments; `Load`
//! produces no reply, so the chunk-reply discipline below is unaffected.
//!
//! Ordering needs no sequence numbers: both channels are FIFO and each
//! worker processes its queue in order, so the `k`-th chunk reply on shard
//! `s`'s channel is always shard `s`'s slice of the `k`-th chunk.  The
//! router's merge consumes one reply per shard per chunk, which is exactly
//! the epoch/watermark discipline described in the crate docs.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender};

use crate::slicing::{EventRec, ShardState};

/// One unit of work broadcast to every shard.
#[derive(Debug)]
pub(crate) struct Chunk {
    /// The receiving shard's slice width for the whole chunk (the router
    /// never grows the clock inside a batch).
    pub(crate) ln: usize,
    /// The routed events of the enclosing batch, shared across shards.
    pub(crate) events: Arc<Vec<EventRec>>,
    /// The window of `events` this chunk covers.
    pub(crate) start: usize,
    /// Exclusive end of the window.
    pub(crate) end: usize,
}

/// Messages the router sends to a shard worker.
#[derive(Debug)]
pub(crate) enum WorkerMsg {
    /// Apply a chunk of events; reply with [`Reply::Slices`].
    Chunk(Chunk),
    /// Hand the slice rows back for a repartition; reply with
    /// [`Reply::State`] and continue with an empty slice until [`Load`].
    ///
    /// [`Load`]: WorkerMsg::Load
    Export,
    /// Adopt re-sliced rows after a repartition.  No reply.
    Load {
        threads: Vec<Vec<u64>>,
        objects: Vec<Vec<u64>>,
    },
}

/// Replies a shard worker sends to the router.
#[derive(Debug)]
pub(crate) enum Reply {
    /// One chunk's slice values, event-major.
    Slices(Vec<u64>),
    /// The shard's slice rows, exported for migration.
    State {
        threads: Vec<Vec<u64>>,
        objects: Vec<Vec<u64>>,
    },
}

/// Spawns the worker thread for one shard.
///
/// The worker exits when the router drops its `Sender` (every queued message
/// is still processed first, because the channel drains before reporting
/// disconnection) or when the router stops listening for replies.
pub(crate) fn spawn(
    shard: usize,
    input: Receiver<WorkerMsg>,
    output: Sender<Reply>,
) -> JoinHandle<()> {
    // `shard.apply_ns` (histogram, ns): one worker's slice application for
    // one chunk — resolved here, before the loop, so recording in the loop
    // never touches the registry (see docs/OBSERVABILITY.md).
    let apply_ns = mvc_obs::global().histogram("shard.apply_ns");
    std::thread::Builder::new()
        .name(format!("mvc-shard-{shard}"))
        .spawn(move || {
            let mut state = ShardState::new(shard);
            while let Ok(msg) = input.recv() {
                match msg {
                    WorkerMsg::Chunk(chunk) => {
                        let mut out = Vec::new();
                        let span = apply_ns.span();
                        state.apply(chunk.ln, &chunk.events[chunk.start..chunk.end], &mut out);
                        span.stop();
                        if output.send(Reply::Slices(out)).is_err() {
                            break;
                        }
                    }
                    WorkerMsg::Export => {
                        let (threads, objects) = state.export();
                        if output.send(Reply::State { threads, objects }).is_err() {
                            break;
                        }
                    }
                    WorkerMsg::Load { threads, objects } => state.restore(threads, objects),
                }
            }
        })
        // mvc-lint: allow(hot-path-panic) — spawn fails only on OS thread exhaustion at engine construction, before any event flows
        .expect("spawning a shard worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn slices(reply: Reply) -> Vec<u64> {
        match reply {
            Reply::Slices(v) => v,
            other => panic!("expected slices, got {other:?}"),
        }
    }

    #[test]
    fn worker_processes_chunks_in_order_and_exits_on_disconnect() {
        let (to_shard, input) = unbounded();
        let (output, replies) = unbounded();
        let handle = spawn(0, input, output);
        let events = Arc::new(vec![
            EventRec::striped(0, 0, 0, 1),
            EventRec::striped(0, 1, 0, 1),
        ]);
        for (start, end) in [(0, 1), (1, 2)] {
            to_shard
                .send(WorkerMsg::Chunk(Chunk {
                    ln: 1,
                    events: Arc::clone(&events),
                    start,
                    end,
                }))
                .unwrap();
        }
        assert_eq!(slices(replies.recv().unwrap()), vec![1]);
        assert_eq!(
            slices(replies.recv().unwrap()),
            vec![2],
            "state persists FIFO"
        );
        drop(to_shard);
        handle.join().unwrap();
    }

    #[test]
    fn export_then_load_migrates_state_through_the_worker() {
        let (to_shard, input) = unbounded();
        let (output, replies) = unbounded();
        let handle = spawn(0, input, output);
        let events = Arc::new(vec![EventRec::striped(0, 0, 0, 1)]);
        to_shard
            .send(WorkerMsg::Chunk(Chunk {
                ln: 1,
                events: Arc::clone(&events),
                start: 0,
                end: 1,
            }))
            .unwrap();
        assert_eq!(slices(replies.recv().unwrap()), vec![1]);
        to_shard.send(WorkerMsg::Export).unwrap();
        let (threads, objects) = match replies.recv().unwrap() {
            Reply::State { threads, objects } => (threads, objects),
            other => panic!("expected state, got {other:?}"),
        };
        assert_eq!(threads[0], vec![1]);
        // Load the state back (identity migration) and keep counting.
        to_shard.send(WorkerMsg::Load { threads, objects }).unwrap();
        to_shard
            .send(WorkerMsg::Chunk(Chunk {
                ln: 1,
                events,
                start: 0,
                end: 1,
            }))
            .unwrap();
        assert_eq!(slices(replies.recv().unwrap()), vec![2], "history kept");
        drop(to_shard);
        handle.join().unwrap();
    }
}
