//! The threaded executor's shard workers.
//!
//! Each shard is one OS thread owning a [`ShardState`](crate::slicing) and
//! fed by its own event queue.  The router broadcasts every chunk (a shared
//! `Arc` of routed events plus a `start..end` window, so a whole batch is
//! one allocation no matter how many chunks it splits into) to every shard;
//! a shard applies the chunk to its slice and sends the resulting flat
//! buffer back on its private reply channel.
//!
//! Ordering needs no sequence numbers: both channels are FIFO and each
//! worker processes its queue in order, so the `k`-th reply on shard `s`'s
//! channel is always shard `s`'s slice of the `k`-th chunk.  The router's
//! merge consumes one reply per shard per chunk, which is exactly the
//! epoch/watermark discipline described in the crate docs.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender};

use crate::slicing::{EventRec, ShardState};

/// One unit of work broadcast to every shard.
#[derive(Debug)]
pub(crate) struct Chunk {
    /// Global clock width for the whole chunk (the router never grows the
    /// clock inside a batch).
    pub(crate) width: usize,
    /// The routed events of the enclosing batch, shared across shards.
    pub(crate) events: Arc<Vec<EventRec>>,
    /// The window of `events` this chunk covers.
    pub(crate) start: usize,
    /// Exclusive end of the window.
    pub(crate) end: usize,
}

/// Spawns the worker thread for one shard.
///
/// The worker exits when the router drops its `Sender` (every queued chunk
/// is still processed first, because the channel drains before reporting
/// disconnection) or when the router stops listening for replies.
pub(crate) fn spawn(
    shard: usize,
    shards: usize,
    input: Receiver<Chunk>,
    output: Sender<Vec<u64>>,
) -> JoinHandle<()> {
    // `shard.apply_ns` (histogram, ns): one worker's slice application for
    // one chunk — resolved here, before the loop, so recording in the loop
    // never touches the registry (see docs/OBSERVABILITY.md).
    let apply_ns = mvc_obs::global().histogram("shard.apply_ns");
    std::thread::Builder::new()
        .name(format!("mvc-shard-{shard}"))
        .spawn(move || {
            let mut state = ShardState::new(shard, shards);
            while let Ok(chunk) = input.recv() {
                let mut out = Vec::new();
                let span = apply_ns.span();
                state.apply(chunk.width, &chunk.events[chunk.start..chunk.end], &mut out);
                span.stop();
                if output.send(out).is_err() {
                    break;
                }
            }
        })
        // mvc-lint: allow(hot-path-panic) — spawn fails only on OS thread exhaustion at engine construction, before any event flows
        .expect("spawning a shard worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn worker_processes_chunks_in_order_and_exits_on_disconnect() {
        let (to_shard, input) = unbounded();
        let (output, replies) = unbounded();
        let handle = spawn(0, 1, input, output);
        let events = Arc::new(vec![
            EventRec { t: 0, o: 0, c: 0 },
            EventRec { t: 0, o: 1, c: 0 },
        ]);
        for (start, end) in [(0, 1), (1, 2)] {
            to_shard
                .send(Chunk {
                    width: 1,
                    events: Arc::clone(&events),
                    start,
                    end,
                })
                .unwrap();
        }
        assert_eq!(replies.recv().unwrap(), vec![1]);
        assert_eq!(replies.recv().unwrap(), vec![2], "state persists FIFO");
        drop(to_shard);
        handle.join().unwrap();
    }
}
