//! The online component-selection mechanisms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvc_clock::Component;
use mvc_graph::{stats::more_popular, BipartiteGraph, Vertex};
use mvc_trace::{ObjectId, ThreadId};

/// An online component-selection policy.
///
/// [`choose`](OnlineMechanism::choose) is called only when a newly revealed
/// event `(thread, object)` is *not* covered by the components selected so
/// far; it must return one of the two endpoints, which is then added as a new
/// clock component (components are never removed).
///
/// `graph` is the thread–object bipartite graph of the computation revealed
/// so far, *including* the edge of the current event.
///
/// The trait is dyn-compatible: every driver in the workspace accepts
/// `Box<dyn OnlineMechanism>`, so mechanisms can be selected by name at
/// runtime through the [`MechanismRegistry`](crate::MechanismRegistry)
/// instead of being enumerated as concrete types.
pub trait OnlineMechanism {
    /// A short, stable name for reports.
    fn name(&self) -> &'static str;

    /// Chooses which endpoint of the uncovered event becomes a component.
    fn choose(&mut self, graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component;
}

impl<M: OnlineMechanism + ?Sized> OnlineMechanism for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn choose(&mut self, graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        (**self).choose(graph, thread, object)
    }
}

impl<M: OnlineMechanism + ?Sized> OnlineMechanism for &mut M {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn choose(&mut self, graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        (**self).choose(graph, thread, object)
    }
}

/// Which side the [`Naive`] mechanism always chooses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NaiveSide {
    /// Always promote the event's thread.
    #[default]
    Threads,
    /// Always promote the event's object.
    Objects,
}

/// The conventional solution: always choose threads (or always objects).
///
/// Produces a final clock with one component per active thread (resp.
/// object) — the traditional vector clock, used as the baseline in every
/// figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Naive {
    side: NaiveSide,
}

impl Naive {
    /// Always choose threads.
    pub fn threads() -> Self {
        Self {
            side: NaiveSide::Threads,
        }
    }

    /// Always choose objects.
    pub fn objects() -> Self {
        Self {
            side: NaiveSide::Objects,
        }
    }

    /// The side this instance promotes.
    pub fn side(&self) -> NaiveSide {
        self.side
    }
}

impl OnlineMechanism for Naive {
    fn name(&self) -> &'static str {
        match self.side {
            NaiveSide::Threads => "naive-threads",
            NaiveSide::Objects => "naive-objects",
        }
    }

    fn choose(&mut self, _graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        match self.side {
            NaiveSide::Threads => Component::Thread(thread),
            NaiveSide::Objects => Component::Object(object),
        }
    }
}

/// Choose the thread or the object with probability ½ each.
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// Creates the mechanism with a deterministic seed (evaluation runs are
    /// reproducible given the seed).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OnlineMechanism for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, _graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        if self.rng.gen_bool(0.5) {
            Component::Thread(thread)
        } else {
            Component::Object(object)
        }
    }
}

/// Choose the endpoint with higher popularity `deg(v) / |E|` in the revealed
/// graph (Definition 1 of the paper); ties go to the object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Popularity;

impl Popularity {
    /// Creates the mechanism.
    pub fn new() -> Self {
        Self
    }
}

impl OnlineMechanism for Popularity {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn choose(&mut self, graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        match more_popular(graph, thread.index(), object.index()) {
            Vertex::Left(t) => Component::Thread(ThreadId(t)),
            Vertex::Right(o) => Component::Object(ObjectId(o)),
        }
    }
}

/// The practical hybrid from the paper's Section V conclusion: start with
/// [`Popularity`], and once the revealed graph exceeds a density threshold or
/// a node-count threshold, behave like [`Naive`] for all later decisions.
///
/// Density is measured over the *active* vertices of the revealed graph and
/// only consulted once at least [`Adaptive::DENSITY_WARMUP_ACTIVE_NODES`]
/// vertices are active: a freshly revealed graph of a handful of nodes is
/// always near density 1.0, and switching on that noise would collapse the
/// mechanism into plain Naive from the first event.
#[derive(Debug, Clone)]
pub struct Adaptive {
    popularity: Popularity,
    naive: Naive,
    density_threshold: f64,
    node_threshold: usize,
    switched: bool,
}

impl Adaptive {
    /// Minimum number of active vertices before the density trigger is
    /// consulted (below this, observed density is dominated by small-sample
    /// noise).
    pub const DENSITY_WARMUP_ACTIVE_NODES: usize = 16;

    /// Creates the hybrid with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `density_threshold` is not in `[0, 1]`.
    pub fn new(density_threshold: f64, node_threshold: usize, naive_side: NaiveSide) -> Self {
        assert!(
            (0.0..=1.0).contains(&density_threshold),
            "density threshold must be within [0, 1], got {density_threshold}"
        );
        Self {
            popularity: Popularity::new(),
            naive: Naive { side: naive_side },
            density_threshold,
            node_threshold,
            switched: false,
        }
    }

    /// Thresholds matching the crossovers observed in the paper's evaluation:
    /// density 0.2 and 70 active nodes.
    pub fn with_paper_thresholds() -> Self {
        Self::new(0.2, 70, NaiveSide::Threads)
    }

    /// Returns `true` once the mechanism has permanently switched to Naive.
    pub fn has_switched(&self) -> bool {
        self.switched
    }
}

impl OnlineMechanism for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn choose(&mut self, graph: &BipartiteGraph, thread: ThreadId, object: ObjectId) -> Component {
        if !self.switched {
            // O(1) per decision: the graph maintains its active-vertex
            // counts incrementally, so the hybrid adds no per-event scan of
            // the revealed graph.
            let active_left = graph.active_left_count();
            let active_right = graph.active_right_count();
            let active_nodes = active_left + active_right;
            // Density over active vertices only: the allocated sides of a
            // grown revealed graph track the highest ids seen, not the
            // population that matters for cover size.
            let active_density = if active_left == 0 || active_right == 0 {
                0.0
            } else {
                graph.edge_count() as f64 / (active_left * active_right) as f64
            };
            let density_tripped = active_nodes >= Self::DENSITY_WARMUP_ACTIVE_NODES
                && active_density > self.density_threshold;
            if density_tripped || active_nodes > self.node_threshold {
                self.switched = true;
            }
        }
        if self.switched {
            self.naive.choose(graph, thread, object)
        } else {
            self.popularity.choose(graph, thread, object)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with(edges: &[(usize, usize)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(10, 10, edges)
    }

    #[test]
    fn naive_threads_always_picks_thread() {
        let mut m = Naive::threads();
        let g = graph_with(&[(0, 0)]);
        assert_eq!(
            m.choose(&g, ThreadId(0), ObjectId(0)),
            Component::Thread(ThreadId(0))
        );
        assert_eq!(m.name(), "naive-threads");
        assert_eq!(m.side(), NaiveSide::Threads);
    }

    #[test]
    fn naive_objects_always_picks_object() {
        let mut m = Naive::objects();
        let g = graph_with(&[(3, 7)]);
        assert_eq!(
            m.choose(&g, ThreadId(3), ObjectId(7)),
            Component::Object(ObjectId(7))
        );
        assert_eq!(m.name(), "naive-objects");
        assert_eq!(Naive::default().side(), NaiveSide::Threads);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_picks_an_endpoint() {
        let g = graph_with(&[(1, 2)]);
        let run = |seed| {
            let mut m = Random::seeded(seed);
            (0..20)
                .map(|_| m.choose(&g, ThreadId(1), ObjectId(2)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed, same decisions");
        for c in run(9) {
            assert!(
                c == Component::Thread(ThreadId(1)) || c == Component::Object(ObjectId(2)),
                "random must pick one of the two endpoints"
            );
        }
        // Across many draws both endpoints must appear (probability of failure ~2^-40).
        let picks = run(1234);
        assert!(picks.iter().any(|c| matches!(c, Component::Thread(_))));
        assert!(picks.iter().any(|c| matches!(c, Component::Object(_))));
        assert_eq!(Random::seeded(0).name(), "random");
    }

    #[test]
    fn popularity_picks_higher_degree_endpoint() {
        // Object 0 touched by threads 0,1,2; thread 0 touched objects 0 only.
        let g = graph_with(&[(0, 0), (1, 0), (2, 0)]);
        let mut m = Popularity::new();
        assert_eq!(
            m.choose(&g, ThreadId(0), ObjectId(0)),
            Component::Object(ObjectId(0))
        );
        // Thread 5 with degree 3 vs object 6 with degree 1.
        let g2 = graph_with(&[(5, 6), (5, 7), (5, 8)]);
        let mut m2 = Popularity::new();
        assert_eq!(
            m2.choose(&g2, ThreadId(5), ObjectId(6)),
            Component::Thread(ThreadId(5))
        );
        assert_eq!(m2.name(), "popularity");
    }

    #[test]
    fn popularity_tie_goes_to_object() {
        let g = graph_with(&[(0, 0)]);
        let mut m = Popularity::new();
        assert_eq!(
            m.choose(&g, ThreadId(0), ObjectId(0)),
            Component::Object(ObjectId(0))
        );
    }

    #[test]
    fn adaptive_switches_on_node_threshold() {
        let mut m = Adaptive::new(1.0, 3, NaiveSide::Threads);
        // Small graph: behaves like popularity (object on ties).
        let small = graph_with(&[(0, 0)]);
        assert_eq!(
            m.choose(&small, ThreadId(0), ObjectId(0)),
            Component::Object(ObjectId(0))
        );
        assert!(!m.has_switched());
        // Larger graph: 4 active nodes > 3 -> switch to naive-threads, permanently.
        let big = graph_with(&[(0, 0), (1, 1)]);
        assert_eq!(
            m.choose(&big, ThreadId(1), ObjectId(1)),
            Component::Thread(ThreadId(1))
        );
        assert!(m.has_switched());
        // Even on a small graph again, it stays naive.
        assert_eq!(
            m.choose(&small, ThreadId(0), ObjectId(0)),
            Component::Thread(ThreadId(0))
        );
        assert_eq!(m.name(), "adaptive");
    }

    #[test]
    fn adaptive_switches_on_density_threshold() {
        let mut m = Adaptive::new(0.4, 1000, NaiveSide::Objects);
        // Density over active nodes 1/1 = 1.0, but only 2 active vertices:
        // below the warm-up, so the trigger must not fire.
        let sparse = graph_with(&[(0, 0)]);
        m.choose(&sparse, ThreadId(0), ObjectId(0));
        assert!(!m.has_switched());
        // Complete 8x8 graph: 16 active vertices (warm-up reached), active
        // density 1.0 > 0.4.
        let mut edges = Vec::new();
        for t in 0..8 {
            for o in 0..8 {
                edges.push((t, o));
            }
        }
        let dense = BipartiteGraph::from_edges(8, 8, &edges);
        assert_eq!(
            m.choose(&dense, ThreadId(1), ObjectId(1)),
            Component::Object(ObjectId(1))
        );
        assert!(m.has_switched());
    }

    #[test]
    fn adaptive_ignores_small_sample_density() {
        // Regression: a freshly revealed graph is always near density 1.0;
        // before the warm-up the mechanism must keep behaving like
        // Popularity instead of collapsing into Naive on the first event.
        let mut m = Adaptive::with_paper_thresholds();
        let tiny = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        assert_eq!(
            m.choose(&tiny, ThreadId(0), ObjectId(0)),
            Component::Object(ObjectId(0)),
            "popularity tie-break (object), not naive-threads"
        );
        assert!(!m.has_switched());
    }

    #[test]
    #[should_panic(expected = "density threshold")]
    fn adaptive_rejects_bad_threshold() {
        let _ = Adaptive::new(2.0, 10, NaiveSide::Threads);
    }

    #[test]
    fn paper_thresholds_constructor() {
        let m = Adaptive::with_paper_thresholds();
        assert!(!m.has_switched());
    }
}
