//! Name-based construction of online mechanisms.
//!
//! The evaluation harness, the `mvc_eval` binary, the benchmarks and the
//! conformance suite all need to sweep over "every mechanism the paper
//! evaluates" without hard-coding concrete types in each place.
//! [`MechanismRegistry`] is that single construction point: it resolves a
//! stable name (`"popularity"`, `"adaptive"`, …) to a boxed
//! [`OnlineMechanism`], carrying the knobs some mechanisms need — the RNG
//! seed for [`Random`], the switch thresholds for [`Adaptive`] — so callers
//! configure once and build by name.

use std::fmt;

use crate::mechanism::{Adaptive, Naive, NaiveSide, OnlineMechanism, Popularity, Random};

/// Error returned when a mechanism name is not in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMechanismError {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownMechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mechanism '{}' (known: {})",
            self.name,
            MechanismRegistry::names().join(", ")
        )
    }
}

impl std::error::Error for UnknownMechanismError {}

/// Factory for the paper's online mechanisms, resolved by name.
///
/// The default configuration reproduces the paper's evaluation: seed 0 for
/// the Random mechanism and the Section V crossover thresholds (density 0.2,
/// 70 active nodes, naive side = threads) for Adaptive.
///
/// ```
/// use mvc_online::{simulate_final_size, MechanismRegistry};
///
/// let registry = MechanismRegistry::new().seed(42);
/// let mut adaptive = registry.from_name("adaptive").unwrap();
/// let size = simulate_final_size(adaptive.as_mut(), &[(0, 0), (1, 0), (2, 0)]);
/// assert_eq!(size, 1, "one hub object covers the whole star");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismRegistry {
    seed: u64,
    density_threshold: f64,
    node_threshold: usize,
    naive_side: NaiveSide,
}

impl Default for MechanismRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MechanismRegistry {
    /// Creates a registry with the paper's configuration.
    pub fn new() -> Self {
        Self {
            seed: 0,
            density_threshold: 0.2,
            node_threshold: 70,
            naive_side: NaiveSide::Threads,
        }
    }

    /// Sets the seed used by seeded mechanisms (currently only `"random"`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Adaptive mechanism's switch thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `density_threshold` is not in `[0, 1]` (the same contract as
    /// [`Adaptive::new`]).
    pub fn adaptive_thresholds(mut self, density_threshold: f64, node_threshold: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&density_threshold),
            "density threshold must be within [0, 1], got {density_threshold}"
        );
        self.density_threshold = density_threshold;
        self.node_threshold = node_threshold;
        self
    }

    /// Sets the side Adaptive falls back to after its switch.
    pub fn naive_side(mut self, side: NaiveSide) -> Self {
        self.naive_side = side;
        self
    }

    /// The canonical names this registry resolves, in the order the paper
    /// introduces the mechanisms.
    ///
    /// `"naive"` is additionally accepted as an alias for `"naive-threads"`
    /// (the figures label the thread-side baseline plainly "naive").
    pub fn names() -> &'static [&'static str] {
        &[
            "naive-threads",
            "naive-objects",
            "random",
            "popularity",
            "adaptive",
        ]
    }

    /// Builds the mechanism registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownMechanismError`] when the name is not one of
    /// [`MechanismRegistry::names`] (or the `"naive"` alias).
    pub fn from_name(&self, name: &str) -> Result<Box<dyn OnlineMechanism>, UnknownMechanismError> {
        match name {
            "naive" | "naive-threads" => Ok(Box::new(Naive::threads())),
            "naive-objects" => Ok(Box::new(Naive::objects())),
            "random" => Ok(Box::new(Random::seeded(self.seed))),
            "popularity" => Ok(Box::new(Popularity::new())),
            "adaptive" => Ok(Box::new(Adaptive::new(
                self.density_threshold,
                self.node_threshold,
                self.naive_side,
            ))),
            _ => Err(UnknownMechanismError {
                name: name.to_owned(),
            }),
        }
    }

    /// Builds every registered mechanism, in [`MechanismRegistry::names`]
    /// order.
    pub fn all_paper_mechanisms(&self) -> Vec<Box<dyn OnlineMechanism>> {
        Self::names()
            .iter()
            .map(|name| {
                self.from_name(name)
                    .expect("every registered name constructs")
            })
            .collect()
    }
}

/// Builds a mechanism by name with the paper's default configuration —
/// shorthand for `MechanismRegistry::new().from_name(name)`.
///
/// # Errors
///
/// Returns [`UnknownMechanismError`] for names outside the registry.
pub fn mechanism_from_name(name: &str) -> Result<Box<dyn OnlineMechanism>, UnknownMechanismError> {
    MechanismRegistry::new().from_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_graph::BipartiteGraph;
    use mvc_trace::{ObjectId, ThreadId};

    #[test]
    fn every_registered_name_resolves_to_its_own_name() {
        let registry = MechanismRegistry::new();
        for &name in MechanismRegistry::names() {
            let mechanism = registry.from_name(name).unwrap();
            assert_eq!(mechanism.name(), name, "registry name mismatch");
        }
        assert_eq!(
            MechanismRegistry::names().len(),
            registry.all_paper_mechanisms().len()
        );
    }

    #[test]
    fn naive_alias_resolves_to_thread_side() {
        let m = mechanism_from_name("naive").unwrap();
        assert_eq!(m.name(), "naive-threads");
    }

    #[test]
    fn unknown_name_is_reported_with_candidates() {
        let err = mechanism_from_name("optimal").err().unwrap();
        assert_eq!(err.name, "optimal");
        let msg = err.to_string();
        assert!(msg.contains("optimal") && msg.contains("popularity"));
    }

    #[test]
    fn boxed_mechanisms_are_usable_through_the_trait() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0)]);
        for mut mechanism in MechanismRegistry::new().all_paper_mechanisms() {
            let c = mechanism.choose(&g, ThreadId(0), ObjectId(0));
            assert!(
                c == mvc_clock::Component::Thread(ThreadId(0))
                    || c == mvc_clock::Component::Object(ObjectId(0)),
                "{} chose an endpoint outside the event",
                mechanism.name()
            );
        }
    }

    #[test]
    fn registry_seed_controls_random() {
        let g = BipartiteGraph::from_edges(4, 4, &[(1, 2)]);
        let draws = |seed: u64| {
            let mut m = MechanismRegistry::new()
                .seed(seed)
                .from_name("random")
                .unwrap();
            (0..16)
                .map(|_| m.choose(&g, ThreadId(1), ObjectId(2)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(5), draws(5));
    }

    #[test]
    fn registry_thresholds_control_adaptive() {
        // Zero thresholds force the switch on the first decision.
        let mut eager = MechanismRegistry::new()
            .adaptive_thresholds(0.0, 0)
            .naive_side(NaiveSide::Objects)
            .from_name("adaptive")
            .unwrap();
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]);
        assert_eq!(
            eager.choose(&g, ThreadId(0), ObjectId(0)),
            mvc_clock::Component::Object(ObjectId(0))
        );
    }

    #[test]
    #[should_panic(expected = "density threshold")]
    fn registry_rejects_bad_density() {
        let _ = MechanismRegistry::new().adaptive_thresholds(7.0, 1);
    }
}
