//! Competitive analysis of online mechanisms.
//!
//! The hardness of the online problem (Section IV) is that components can
//! only be added, never revised, so an online mechanism is naturally judged
//! by its *competitive ratio*: the size of its final clock divided by the
//! offline optimum (the minimum vertex cover of the final revealed graph).
//! The paper reports that gap only at the end of each run (Figures 6 and 7);
//! [`CompetitiveTracker`] additionally exposes the *trajectory* — after every
//! revealed event, both the online size so far and the optimum for the graph
//! revealed so far — which the ablation experiments use to show where a
//! mechanism falls behind.
//!
//! The optimum of the revealed graph is maintained by
//! [`IncrementalOptimum`]: one augmenting-path attempt per new edge and an
//! `O(1)` cover-size read, so tracking costs amortised `O(E)` per reveal
//! (`O(E²)` per stream) with **no per-reveal allocation** — fit for
//! production-scale monitoring, not just evaluation.  (It previously cloned
//! the revealed graph and re-ran Hopcroft–Karp per edge, `O(E · E√V)`.)

use mvc_clock::ComponentMap;
use mvc_graph::{BipartiteGraph, IncrementalOptimum};
use mvc_trace::{ObjectId, ThreadId};

use crate::mechanism::OnlineMechanism;

/// One point of a competitive trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Number of distinct edges revealed so far.
    pub revealed_edges: usize,
    /// Online clock size after this reveal.
    pub online_size: usize,
    /// Offline optimum (minimum vertex cover) of the graph revealed so far.
    pub offline_optimum: usize,
}

impl TrajectoryPoint {
    /// `online_size / offline_optimum` (1.0 when both are zero).
    pub fn ratio(&self) -> f64 {
        if self.offline_optimum == 0 {
            1.0
        } else {
            self.online_size as f64 / self.offline_optimum as f64
        }
    }
}

/// Result of a tracked online run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompetitiveReport {
    /// Trajectory sampled after every *new* edge reveal.
    pub trajectory: Vec<TrajectoryPoint>,
}

impl CompetitiveReport {
    /// The final point of the trajectory, if any edge was revealed.
    pub fn final_point(&self) -> Option<TrajectoryPoint> {
        self.trajectory.last().copied()
    }

    /// The final competitive ratio (1.0 for an empty run).
    pub fn final_ratio(&self) -> f64 {
        self.final_point().map_or(1.0, |p| p.ratio())
    }

    /// The worst (largest) ratio observed anywhere along the trajectory.
    pub fn worst_ratio(&self) -> f64 {
        self.trajectory
            .iter()
            .map(TrajectoryPoint::ratio)
            .fold(1.0, f64::max)
    }
}

/// Tracks an online mechanism against the offline optimum of the revealed
/// graph.
///
/// The optimum is maintained incrementally (one augmenting-path attempt per
/// new edge, `O(1)` cover-size read between edges), so a tracked reveal costs
/// amortised `O(E)` and allocates nothing: the tracker is safe to leave on in
/// production monitoring, not only in evaluation runs.
#[derive(Debug)]
pub struct CompetitiveTracker<M> {
    mechanism: M,
    optimum: IncrementalOptimum,
    components: ComponentMap,
    trajectory: Vec<TrajectoryPoint>,
}

impl<M: OnlineMechanism> CompetitiveTracker<M> {
    /// Creates a tracker around a mechanism.
    pub fn new(mechanism: M) -> Self {
        Self {
            mechanism,
            optimum: IncrementalOptimum::new(),
            components: ComponentMap::new(),
            trajectory: Vec::new(),
        }
    }

    /// Current online clock size.
    pub fn online_size(&self) -> usize {
        self.components.len()
    }

    /// The thread–object graph revealed so far.
    pub fn revealed_graph(&self) -> &BipartiteGraph {
        self.optimum.graph()
    }

    /// Reveals one event.  A trajectory point is appended only when the event
    /// introduces a new (thread, object) edge — repeats change nothing.
    pub fn reveal(&mut self, thread: ThreadId, object: ObjectId) {
        let is_new = self.optimum.insert_edge(thread.index(), object.index());
        if !is_new {
            return;
        }
        if !self.components.contains_thread(thread) && !self.components.contains_object(object) {
            self.components
                .push(self.mechanism.choose(self.optimum.graph(), thread, object));
        }
        self.trajectory.push(TrajectoryPoint {
            revealed_edges: self.optimum.graph().edge_count(),
            online_size: self.components.len(),
            offline_optimum: self.optimum.cover_size(),
        });
    }

    /// Reveals a whole edge stream and returns the report.
    pub fn run(mut self, edges: &[(usize, usize)]) -> CompetitiveReport {
        for &(t, o) in edges {
            self.reveal(ThreadId(t), ObjectId(o));
        }
        CompetitiveReport {
            trajectory: self.trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Naive, Popularity, Random};
    use mvc_graph::{GraphScenario, RandomGraphBuilder};

    #[test]
    fn empty_run_has_trivial_report() {
        let report = CompetitiveTracker::new(Popularity::new()).run(&[]);
        assert!(report.trajectory.is_empty());
        assert_eq!(report.final_ratio(), 1.0);
        assert_eq!(report.worst_ratio(), 1.0);
        assert!(report.final_point().is_none());
    }

    #[test]
    fn single_edge_is_optimal() {
        let report = CompetitiveTracker::new(Popularity::new()).run(&[(0, 0)]);
        let point = report.final_point().unwrap();
        assert_eq!(point.online_size, 1);
        assert_eq!(point.offline_optimum, 1);
        assert_eq!(point.revealed_edges, 1);
        assert_eq!(report.final_ratio(), 1.0);
    }

    #[test]
    fn repeated_edges_do_not_add_trajectory_points() {
        let report = CompetitiveTracker::new(Naive::threads()).run(&[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(report.trajectory.len(), 1);
    }

    #[test]
    fn online_never_below_offline_along_the_whole_trajectory() {
        let (_, stream) = RandomGraphBuilder::new(20, 20)
            .density(0.1)
            .scenario(GraphScenario::default_nonuniform())
            .seed(3)
            .build_edge_stream();
        for report in [
            CompetitiveTracker::new(Popularity::new()).run(&stream),
            CompetitiveTracker::new(Random::seeded(9)).run(&stream),
            CompetitiveTracker::new(Naive::threads()).run(&stream),
        ] {
            for point in &report.trajectory {
                assert!(point.online_size >= point.offline_optimum);
                assert!(point.ratio() >= 1.0);
            }
            assert!(report.worst_ratio() >= report.final_ratio() || report.trajectory.is_empty());
        }
    }

    #[test]
    fn star_reveal_order_shows_naive_threads_weakness() {
        // Ten threads all touching one object: the optimum is 1 (the object),
        // Naive-threads ends at 10, Popularity ends at... it promotes the
        // object as soon as the tie-break sees it, so it stays near optimal.
        let edges: Vec<(usize, usize)> = (0..10).map(|t| (t, 0)).collect();
        let naive = CompetitiveTracker::new(Naive::threads()).run(&edges);
        let popularity = CompetitiveTracker::new(Popularity::new()).run(&edges);
        assert_eq!(naive.final_point().unwrap().offline_optimum, 1);
        assert_eq!(naive.final_point().unwrap().online_size, 10);
        assert!((naive.final_ratio() - 10.0).abs() < 1e-12);
        assert_eq!(popularity.final_point().unwrap().online_size, 1);
        assert_eq!(popularity.final_ratio(), 1.0);
    }

    #[test]
    fn trajectory_optimum_matches_from_scratch_recompute() {
        // The incremental optimum must be indistinguishable from the old
        // clone-and-replan implementation at every trajectory point.
        let (_, stream) = RandomGraphBuilder::new(25, 25)
            .density(0.12)
            .scenario(GraphScenario::default_nonuniform())
            .seed(5)
            .build_edge_stream();
        let report = CompetitiveTracker::new(Popularity::new()).run(&stream);
        assert_eq!(report.trajectory.len(), stream.len());
        let mut revealed = mvc_graph::BipartiteGraph::new(0, 0);
        for (point, &(t, o)) in report.trajectory.iter().zip(&stream) {
            revealed.add_edge_growing(t, o);
            assert_eq!(
                point.offline_optimum,
                mvc_graph::hopcroft_karp(&revealed).size(),
                "optimum diverged after revealing ({t}, {o})"
            );
        }
    }

    // The reveal-path-neither-clones-nor-replans guard is enforced by
    // mvc-lint's `competitive-no-replan` rule (see lint.toml and
    // docs/LINTS.md), which replaced the source-scan test that lived here.

    #[test]
    fn ratios_are_finite_and_at_least_one() {
        let (_, stream) = RandomGraphBuilder::new(15, 15)
            .density(0.2)
            .seed(11)
            .build_edge_stream();
        let report = CompetitiveTracker::new(Popularity::new()).run(&stream);
        assert!(report.final_ratio() >= 1.0);
        assert!(report.worst_ratio().is_finite());
    }
}
