//! Driving an online mechanism: component selection plus real timestamping.
//!
//! [`OnlineTimestamper`] is the full pipeline — it maintains the revealed
//! thread–object graph, asks the mechanism for a new component whenever an
//! uncovered event arrives, and produces a real timestamp for every event via
//! the incremental [`TimestampingEngine`].  [`simulate_final_size`] is the
//! lightweight variant used by the evaluation figures, which only need the
//! final clock size for a stream of revealed edges.

use mvc_clock::{Component, VectorTimestamp};
use mvc_core::TimestampingEngine;
use mvc_graph::BipartiteGraph;
use mvc_trace::{Computation, ObjectId, ThreadId};

use crate::mechanism::OnlineMechanism;

/// Statistics of one online run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MechanismStats {
    /// Number of events observed.
    pub events: usize,
    /// Number of thread components added.
    pub thread_components: usize,
    /// Number of object components added.
    pub object_components: usize,
}

impl MechanismStats {
    /// Final size of the online mixed vector clock.
    pub fn clock_size(&self) -> usize {
        self.thread_components + self.object_components
    }
}

/// The result of replaying a whole computation through an online mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineRun {
    /// Per-event timestamps, in the computation's append order.
    pub timestamps: Vec<VectorTimestamp>,
    /// Aggregate statistics (component counts).
    pub stats: MechanismStats,
}

/// Online timestamping pipeline: mechanism + revealed graph + engine.
#[derive(Debug)]
pub struct OnlineTimestamper<M> {
    mechanism: M,
    engine: TimestampingEngine,
    revealed: BipartiteGraph,
    stats: MechanismStats,
}

impl<M: OnlineMechanism> OnlineTimestamper<M> {
    /// Creates an online timestamper around a mechanism.
    pub fn new(mechanism: M) -> Self {
        Self {
            mechanism,
            engine: TimestampingEngine::new(),
            revealed: BipartiteGraph::new(0, 0),
            stats: MechanismStats::default(),
        }
    }

    /// The mechanism driving component selection.
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The thread–object graph revealed so far.
    pub fn revealed_graph(&self) -> &BipartiteGraph {
        &self.revealed
    }

    /// Current clock width.
    pub fn clock_size(&self) -> usize {
        self.engine.width()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MechanismStats {
        self.stats
    }

    /// The underlying timestamping engine (e.g. to inspect per-thread clocks).
    pub fn engine(&self) -> &TimestampingEngine {
        &self.engine
    }

    /// Observes one operation: reveals its edge, adds a component if the
    /// operation is not covered, and returns its timestamp.
    pub fn observe(&mut self, thread: ThreadId, object: ObjectId) -> VectorTimestamp {
        self.revealed
            .add_edge_growing(thread.index(), object.index());
        if !self.engine.covers(thread, object) {
            let component = self.mechanism.choose(&self.revealed, thread, object);
            match component {
                Component::Thread(_) => self.stats.thread_components += 1,
                Component::Object(_) => self.stats.object_components += 1,
            }
            self.engine.add_component(component);
        }
        self.stats.events += 1;
        self.engine
            .observe(thread, object)
            .expect("event is covered after adding a component for it")
    }

    /// Replays a whole computation in append order.
    ///
    /// Because components are added while the computation runs, events
    /// observed early have narrower raw timestamps than later ones; the
    /// returned timestamps are all padded to the final clock width (missing
    /// components are zero, which is exactly the value those counters held at
    /// the time), so they can be compared directly.
    pub fn run(mut self, computation: &Computation) -> OnlineRun {
        let raw: Vec<VectorTimestamp> = computation
            .events()
            .map(|e| self.observe(e.thread, e.object))
            .collect();
        let width = self.engine.width();
        let timestamps = raw
            .into_iter()
            .map(|t| {
                let mut v = t.as_slice().to_vec();
                v.resize(width, 0);
                VectorTimestamp::from_components(v)
            })
            .collect();
        OnlineRun {
            timestamps,
            stats: self.stats,
        }
    }
}

/// Replays only the component-selection decisions over an edge-reveal stream
/// and returns the final clock size.
///
/// `edges` is the order in which distinct `(thread, object)` pairs are first
/// revealed (repeat occurrences of a pair never trigger a decision, so they
/// can be omitted).  This is the quantity plotted on the y-axis of Figures
/// 4–7.
pub fn simulate_final_size<M: OnlineMechanism>(
    mechanism: &mut M,
    edges: &[(usize, usize)],
) -> usize {
    let mut revealed = BipartiteGraph::new(0, 0);
    let mut covered_threads = std::collections::HashSet::new();
    let mut covered_objects = std::collections::HashSet::new();
    let mut size = 0usize;
    for &(t, o) in edges {
        revealed.add_edge_growing(t, o);
        if covered_threads.contains(&t) || covered_objects.contains(&o) {
            continue;
        }
        match mechanism.choose(&revealed, ThreadId(t), ObjectId(o)) {
            Component::Thread(id) => covered_threads.insert(id.index()),
            Component::Object(id) => covered_objects.insert(id.index()),
        };
        size += 1;
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Adaptive, Naive, NaiveSide, Popularity, Random};
    use mvc_clock::validate::satisfies_vector_clock_condition;
    use mvc_core::OfflineOptimizer;
    use mvc_graph::{GraphScenario, RandomGraphBuilder};
    use mvc_trace::{WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn naive_threads_equals_active_thread_count() {
        let c = WorkloadBuilder::new(10, 10).operations(200).seed(1).build();
        let run = OnlineTimestamper::new(Naive::threads()).run(&c);
        assert_eq!(run.stats.clock_size(), c.thread_count());
        assert_eq!(run.stats.object_components, 0);
        assert_eq!(run.stats.events, c.len());
    }

    #[test]
    fn naive_objects_equals_active_object_count() {
        let c = WorkloadBuilder::new(10, 10).operations(200).seed(2).build();
        let run = OnlineTimestamper::new(Naive::objects()).run(&c);
        assert_eq!(run.stats.clock_size(), c.object_count());
        assert_eq!(run.stats.thread_components, 0);
    }

    #[test]
    fn online_clock_is_valid_for_every_mechanism() {
        let c = WorkloadBuilder::new(8, 8)
            .operations(150)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.25,
                hot_boost: 5.0,
            })
            .seed(3)
            .build();
        let oracle = c.causality_oracle();
        let runs: Vec<(&str, OnlineRun)> = vec![
            ("naive", OnlineTimestamper::new(Naive::threads()).run(&c)),
            ("random", OnlineTimestamper::new(Random::seeded(7)).run(&c)),
            (
                "popularity",
                OnlineTimestamper::new(Popularity::new()).run(&c),
            ),
            (
                "adaptive",
                OnlineTimestamper::new(Adaptive::with_paper_thresholds()).run(&c),
            ),
        ];
        for (name, run) in runs {
            assert!(
                satisfies_vector_clock_condition(&c, &run.timestamps, &oracle),
                "{name} produced an invalid online clock"
            );
        }
    }

    #[test]
    fn online_size_never_below_offline_optimum() {
        for seed in 0..10 {
            let c = WorkloadBuilder::new(12, 12)
                .operations(150)
                .seed(seed)
                .build();
            let optimal = OfflineOptimizer::new()
                .plan_for_computation(&c)
                .clock_size();
            for run in [
                OnlineTimestamper::new(Popularity::new()).run(&c),
                OnlineTimestamper::new(Random::seeded(seed)).run(&c),
                OnlineTimestamper::new(Naive::threads()).run(&c),
            ] {
                assert!(
                    run.stats.clock_size() >= optimal,
                    "online mechanism beat the offline optimum (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn observe_reveals_edges_and_grows_clock() {
        let mut ts = OnlineTimestamper::new(Popularity::new());
        let a = ts.observe(ThreadId(0), ObjectId(0));
        assert_eq!(ts.clock_size(), 1);
        assert_eq!(a.len(), 1);
        // Covered event does not add a component.
        let b = ts.observe(ThreadId(5), ObjectId(0));
        assert_eq!(ts.clock_size(), 1);
        assert!(a.strictly_less_than(&b));
        assert_eq!(ts.revealed_graph().edge_count(), 2);
        assert_eq!(ts.stats().events, 2);
        assert_eq!(ts.engine().events_observed(), 2);
        assert_eq!(ts.mechanism().name(), "popularity");
    }

    #[test]
    fn simulate_matches_full_run_for_deterministic_mechanisms() {
        let (_, stream) = RandomGraphBuilder::new(30, 30)
            .density(0.08)
            .scenario(GraphScenario::default_nonuniform())
            .seed(5)
            .build_edge_stream();
        let c = mvc_trace::generator::computation_from_edge_stream(&stream);

        let sim = simulate_final_size(&mut Popularity::new(), &stream);
        let full = OnlineTimestamper::new(Popularity::new()).run(&c);
        assert_eq!(sim, full.stats.clock_size());

        let sim_naive = simulate_final_size(&mut Naive::threads(), &stream);
        let full_naive = OnlineTimestamper::new(Naive::threads()).run(&c);
        assert_eq!(sim_naive, full_naive.stats.clock_size());
    }

    #[test]
    fn simulate_ignores_repeated_edges() {
        let edges = vec![(0, 0), (0, 0), (1, 0), (1, 0)];
        let size = simulate_final_size(&mut Naive::threads(), &edges);
        assert_eq!(size, 2);
    }

    #[test]
    fn adaptive_behaves_like_popularity_then_naive() {
        // Low thresholds: adaptive switches almost immediately, so its final
        // size is close to naive's.
        let (_, stream) = RandomGraphBuilder::new(40, 40)
            .density(0.1)
            .seed(11)
            .build_edge_stream();
        let adaptive_size =
            simulate_final_size(&mut Adaptive::new(0.0, 0, NaiveSide::Threads), &stream);
        let naive_size = simulate_final_size(&mut Naive::threads(), &stream);
        assert_eq!(adaptive_size, naive_size);
    }

    proptest! {
        /// Whatever the mechanism decides, the selected components always form a
        /// vertex cover of the revealed graph, so the online clock is valid.
        #[test]
        fn prop_online_components_cover_revealed_graph(
            threads in 1usize..10,
            objects in 1usize..10,
            ops in 0usize..120,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let mut ts = OnlineTimestamper::new(Random::seeded(seed));
            for e in c.events() {
                ts.observe(e.thread, e.object);
            }
            let map = ts.engine().components().clone();
            for e in c.events() {
                prop_assert!(map.contains_thread(e.thread) || map.contains_object(e.object));
            }
            prop_assert_eq!(ts.stats().clock_size(), ts.clock_size());
        }

        /// Online popularity timestamps are always valid vector clocks.
        #[test]
        fn prop_popularity_online_clock_valid(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..80,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let run = OnlineTimestamper::new(Popularity::new()).run(&c);
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &run.timestamps, &oracle));
        }
    }
}
