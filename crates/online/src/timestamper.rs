//! Driving an online mechanism: component selection plus real timestamping.
//!
//! [`OnlineTimestamper`] is the full pipeline — it maintains the revealed
//! thread–object graph, asks the mechanism for a new component whenever an
//! uncovered event arrives, and produces a real timestamp for every event via
//! the incremental [`TimestampingEngine`].  It implements the unified
//! [`Timestamper`] trait, so harnesses can drive it interchangeably with the
//! batch replay path and the raw engine.  [`simulate_final_size`] replays
//! only the component-selection decisions over an edge-reveal stream — the
//! lightweight variant the evaluation figures need — using the same
//! [`ComponentMap`] cover tracking as the full pipeline.

use mvc_clock::{Component, ComponentMap, VectorTimestamp};
use mvc_core::{replay, TimestampError, TimestampReport, Timestamper, TimestampingEngine};
use mvc_graph::BipartiteGraph;
use mvc_trace::{Computation, ObjectId, ThreadId};

use crate::mechanism::OnlineMechanism;

/// Statistics of one online run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MechanismStats {
    /// Number of events observed.
    pub events: usize,
    /// Number of thread components added by the mechanism.
    pub thread_components: usize,
    /// Number of object components added by the mechanism.
    pub object_components: usize,
}

impl MechanismStats {
    /// Number of components the mechanism added (for a timestamper started
    /// empty, the final size of the online mixed vector clock).
    pub fn clock_size(&self) -> usize {
        self.thread_components + self.object_components
    }
}

/// The result of replaying a whole computation through an online mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineRun {
    /// Per-event timestamps, in the computation's append order.
    pub timestamps: Vec<VectorTimestamp>,
    /// Aggregate statistics (component counts).
    pub stats: MechanismStats,
}

/// Online timestamping pipeline: mechanism + revealed graph + engine.
#[derive(Debug)]
pub struct OnlineTimestamper<M> {
    mechanism: M,
    engine: TimestampingEngine,
    revealed: BipartiteGraph,
    stats: MechanismStats,
}

impl<M: OnlineMechanism> OnlineTimestamper<M> {
    /// Creates an online timestamper around a mechanism, starting from an
    /// empty component set.
    pub fn new(mechanism: M) -> Self {
        Self::with_components(mechanism, ComponentMap::new())
    }

    /// Creates an online timestamper warm-started with an existing component
    /// map (e.g. one computed by the offline optimizer for the part of the
    /// computation already known).  The mechanism is only consulted for
    /// events the seeded components do not cover;
    /// [`stats`](OnlineTimestamper::stats) counts the mechanism's additions,
    /// not the seeded components.
    pub fn with_components(mechanism: M, components: ComponentMap) -> Self {
        Self {
            mechanism,
            engine: TimestampingEngine::with_components(components),
            revealed: BipartiteGraph::new(0, 0),
            stats: MechanismStats::default(),
        }
    }

    /// The mechanism driving component selection.
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The thread–object graph revealed so far.
    pub fn revealed_graph(&self) -> &BipartiteGraph {
        &self.revealed
    }

    /// Current clock width.
    pub fn clock_size(&self) -> usize {
        self.engine.width()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MechanismStats {
        self.stats
    }

    /// The underlying timestamping engine (e.g. to inspect per-thread clocks).
    pub fn engine(&self) -> &TimestampingEngine {
        &self.engine
    }

    /// Observes one operation: reveals its edge, asks the mechanism for a
    /// component if the operation is not covered, and returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`TimestampError::RogueComponent`] when the mechanism violates
    /// its contract and chooses a component covering neither endpoint.  The
    /// rogue component is discarded and neither the clock nor the stats
    /// change (the event's edge stays revealed — it genuinely was observed —
    /// but re-revealing it on a retry is a no-op), so the call is safe to
    /// retry.
    pub fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        self.revealed
            .add_edge_growing(thread.index(), object.index());
        if !self.engine.covers(thread, object) {
            let component = self.mechanism.choose(&self.revealed, thread, object);
            let covers_event =
                component == Component::Thread(thread) || component == Component::Object(object);
            if !covers_event {
                return Err(TimestampError::RogueComponent {
                    thread,
                    object,
                    component,
                });
            }
            match component {
                Component::Thread(_) => self.stats.thread_components += 1,
                Component::Object(_) => self.stats.object_components += 1,
            }
            self.engine.add_component(component);
        }
        let stamp = self.engine.observe(thread, object)?;
        self.stats.events += 1;
        Ok(stamp)
    }

    /// Replays a whole computation in append order.
    ///
    /// Because components are added while the computation runs, events
    /// observed early have narrower raw timestamps than later ones; the
    /// returned timestamps are all padded to the final clock width (missing
    /// components are zero, which is exactly the value those counters held at
    /// the time), so they can be compared directly.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TimestampError`] an observation reports (see
    /// [`OnlineTimestamper::observe`]).
    pub fn run(mut self, computation: &Computation) -> Result<OnlineRun, TimestampError> {
        let timestamps = replay(&mut self, computation)?.timestamps;
        Ok(OnlineRun {
            timestamps,
            stats: self.stats,
        })
    }
}

impl<M: OnlineMechanism> Timestamper for OnlineTimestamper<M> {
    fn name(&self) -> &str {
        self.mechanism.name()
    }

    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        OnlineTimestamper::observe(self, thread, object)
    }

    fn width(&self) -> usize {
        self.engine.width()
    }

    fn finish(&self) -> TimestampReport {
        TimestampReport {
            name: self.mechanism.name().to_owned(),
            events: self.stats.events,
            components: self.engine.components().clone(),
        }
    }
}

/// Replays only the component-selection decisions over an edge-reveal stream
/// and returns the selected components.
///
/// `edges` is the order in which distinct `(thread, object)` pairs are first
/// revealed (repeat occurrences of a pair never trigger a decision, so they
/// can be omitted).  The cover bookkeeping is the same [`ComponentMap`] the
/// full timestamping pipeline uses — only the engine's vector arithmetic is
/// skipped.
pub fn simulate_components<M: OnlineMechanism + ?Sized>(
    mechanism: &mut M,
    edges: &[(usize, usize)],
) -> ComponentMap {
    let mut revealed = BipartiteGraph::new(0, 0);
    let mut components = ComponentMap::new();
    for &(t, o) in edges {
        revealed.add_edge_growing(t, o);
        let (thread, object) = (ThreadId(t), ObjectId(o));
        if components.contains_thread(thread) || components.contains_object(object) {
            continue;
        }
        components.push(mechanism.choose(&revealed, thread, object));
    }
    components
}

/// Replays only the component-selection decisions over an edge-reveal stream
/// and returns the final clock size — the quantity plotted on the y-axis of
/// Figures 4–7.  See [`simulate_components`].
pub fn simulate_final_size<M: OnlineMechanism + ?Sized>(
    mechanism: &mut M,
    edges: &[(usize, usize)],
) -> usize {
    simulate_components(mechanism, edges).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Adaptive, Naive, NaiveSide, Popularity, Random};
    use mvc_clock::validate::satisfies_vector_clock_condition;
    use mvc_clock::TimestampAssigner;
    use mvc_core::OfflineOptimizer;
    use mvc_graph::{GraphScenario, RandomGraphBuilder};
    use mvc_trace::{WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn naive_threads_equals_active_thread_count() {
        let c = WorkloadBuilder::new(10, 10).operations(200).seed(1).build();
        let run = OnlineTimestamper::new(Naive::threads()).run(&c).unwrap();
        assert_eq!(run.stats.clock_size(), c.thread_count());
        assert_eq!(run.stats.object_components, 0);
        assert_eq!(run.stats.events, c.len());
    }

    #[test]
    fn naive_objects_equals_active_object_count() {
        let c = WorkloadBuilder::new(10, 10).operations(200).seed(2).build();
        let run = OnlineTimestamper::new(Naive::objects()).run(&c).unwrap();
        assert_eq!(run.stats.clock_size(), c.object_count());
        assert_eq!(run.stats.thread_components, 0);
    }

    #[test]
    fn online_clock_is_valid_for_every_mechanism() {
        let c = WorkloadBuilder::new(8, 8)
            .operations(150)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.25,
                hot_boost: 5.0,
            })
            .seed(3)
            .build();
        let oracle = c.causality_oracle();
        let runs: Vec<(&str, OnlineRun)> = vec![
            (
                "naive",
                OnlineTimestamper::new(Naive::threads()).run(&c).unwrap(),
            ),
            (
                "random",
                OnlineTimestamper::new(Random::seeded(7)).run(&c).unwrap(),
            ),
            (
                "popularity",
                OnlineTimestamper::new(Popularity::new()).run(&c).unwrap(),
            ),
            (
                "adaptive",
                OnlineTimestamper::new(Adaptive::with_paper_thresholds())
                    .run(&c)
                    .unwrap(),
            ),
        ];
        for (name, run) in runs {
            assert!(
                satisfies_vector_clock_condition(&c, &run.timestamps, &oracle),
                "{name} produced an invalid online clock"
            );
        }
    }

    #[test]
    fn online_size_never_below_offline_optimum() {
        for seed in 0..10 {
            let c = WorkloadBuilder::new(12, 12)
                .operations(150)
                .seed(seed)
                .build();
            let optimal = OfflineOptimizer::new()
                .plan_for_computation(&c)
                .clock_size();
            for run in [
                OnlineTimestamper::new(Popularity::new()).run(&c).unwrap(),
                OnlineTimestamper::new(Random::seeded(seed))
                    .run(&c)
                    .unwrap(),
                OnlineTimestamper::new(Naive::threads()).run(&c).unwrap(),
            ] {
                assert!(
                    run.stats.clock_size() >= optimal,
                    "online mechanism beat the offline optimum (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn observe_reveals_edges_and_grows_clock() {
        let mut ts = OnlineTimestamper::new(Popularity::new());
        let a = ts.observe(ThreadId(0), ObjectId(0)).unwrap();
        assert_eq!(ts.clock_size(), 1);
        assert_eq!(a.len(), 1);
        // Covered event does not add a component.
        let b = ts.observe(ThreadId(5), ObjectId(0)).unwrap();
        assert_eq!(ts.clock_size(), 1);
        assert!(a.strictly_less_than(&b));
        assert_eq!(ts.revealed_graph().edge_count(), 2);
        assert_eq!(ts.stats().events, 2);
        assert_eq!(ts.engine().events_observed(), 2);
        assert_eq!(ts.mechanism().name(), "popularity");
    }

    /// A contract-violating mechanism: promotes a thread unrelated to the
    /// uncovered event.
    struct Rogue;

    impl OnlineMechanism for Rogue {
        fn name(&self) -> &'static str {
            "rogue"
        }

        fn choose(
            &mut self,
            _graph: &BipartiteGraph,
            thread: ThreadId,
            _object: ObjectId,
        ) -> Component {
            Component::Thread(ThreadId(thread.index() + 1000))
        }
    }

    #[test]
    fn uncovered_event_surfaces_as_error_not_panic() {
        let mut ts = OnlineTimestamper::new(Rogue);
        let err = ts.observe(ThreadId(0), ObjectId(0)).unwrap_err();
        assert_eq!(
            err,
            TimestampError::RogueComponent {
                thread: ThreadId(0),
                object: ObjectId(0),
                component: Component::Thread(ThreadId(1000)),
            }
        );
        assert_eq!(ts.stats().events, 0, "failed observation must not count");
        assert_eq!(ts.clock_size(), 0, "the rogue component is discarded");
        assert_eq!(
            ts.stats().clock_size(),
            0,
            "stats stay in step with the clock"
        );
        // Retrying is safe and reports the same error again.
        assert_eq!(ts.observe(ThreadId(0), ObjectId(0)).unwrap_err(), err);
        assert_eq!(ts.clock_size(), 0);
        // The run API propagates the same error.
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let err = OnlineTimestamper::new(Rogue).run(&c).unwrap_err();
        assert!(matches!(err, TimestampError::RogueComponent { .. }));
        assert!(err.to_string().contains("T1000"));
    }

    #[test]
    fn warm_started_timestamper_skips_the_mechanism_for_covered_events() {
        let c = WorkloadBuilder::new(6, 6).operations(80).seed(17).build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let run = OnlineTimestamper::with_components(Rogue, plan.components().clone())
            .run(&c)
            .expect("every event is covered by the seeded plan");
        assert_eq!(run.timestamps, plan.assigner().assign(&c));
        let stats = OnlineTimestamper::with_components(Rogue, plan.components().clone()).stats();
        assert_eq!(stats.clock_size(), 0, "stats count mechanism additions");
    }

    #[test]
    fn simulate_matches_full_run_for_deterministic_mechanisms() {
        let (_, stream) = RandomGraphBuilder::new(30, 30)
            .density(0.08)
            .scenario(GraphScenario::default_nonuniform())
            .seed(5)
            .build_edge_stream();
        let c = mvc_trace::generator::computation_from_edge_stream(&stream);

        let sim = simulate_final_size(&mut Popularity::new(), &stream);
        let full = OnlineTimestamper::new(Popularity::new()).run(&c).unwrap();
        assert_eq!(sim, full.stats.clock_size());

        let sim_naive = simulate_final_size(&mut Naive::threads(), &stream);
        let full_naive = OnlineTimestamper::new(Naive::threads()).run(&c).unwrap();
        assert_eq!(sim_naive, full_naive.stats.clock_size());
    }

    #[test]
    fn simulate_components_match_full_run_component_map() {
        let (_, stream) = RandomGraphBuilder::new(20, 20)
            .density(0.1)
            .seed(8)
            .build_edge_stream();
        let c = mvc_trace::generator::computation_from_edge_stream(&stream);
        let sim = simulate_components(&mut Popularity::new(), &stream);
        let mut full = OnlineTimestamper::new(Popularity::new());
        for e in c.events() {
            full.observe(e.thread, e.object).unwrap();
        }
        assert_eq!(&sim, full.engine().components());
    }

    #[test]
    fn simulate_ignores_repeated_edges() {
        let edges = vec![(0, 0), (0, 0), (1, 0), (1, 0)];
        let size = simulate_final_size(&mut Naive::threads(), &edges);
        assert_eq!(size, 2);
    }

    #[test]
    fn simulate_accepts_dyn_mechanisms() {
        let mut boxed = crate::registry::mechanism_from_name("popularity").unwrap();
        let size = simulate_final_size(boxed.as_mut(), &[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(size, 1);
    }

    #[test]
    fn adaptive_behaves_like_popularity_then_naive() {
        // Low thresholds: adaptive switches almost immediately, so its final
        // size is close to naive's.
        let (_, stream) = RandomGraphBuilder::new(40, 40)
            .density(0.1)
            .seed(11)
            .build_edge_stream();
        let adaptive_size =
            simulate_final_size(&mut Adaptive::new(0.0, 0, NaiveSide::Threads), &stream);
        let naive_size = simulate_final_size(&mut Naive::threads(), &stream);
        assert_eq!(adaptive_size, naive_size);
    }

    #[test]
    fn timestamper_trait_reports_the_online_run() {
        let c = WorkloadBuilder::new(5, 5).operations(60).seed(9).build();
        let mut ts = OnlineTimestamper::new(Popularity::new());
        let run = replay(&mut ts, &c).unwrap();
        assert_eq!(run.report.name, "popularity");
        assert_eq!(run.report.events, c.len());
        assert_eq!(run.report.clock_size(), ts.clock_size());
        assert_eq!(
            run.report.thread_components() + run.report.object_components(),
            ts.stats().clock_size()
        );
        assert_eq!(Timestamper::width(&ts), ts.clock_size());
        assert_eq!(Timestamper::name(&ts), "popularity");
    }

    proptest! {
        /// Whatever the mechanism decides, the selected components always form a
        /// vertex cover of the revealed graph, so the online clock is valid.
        #[test]
        fn prop_online_components_cover_revealed_graph(
            threads in 1usize..10,
            objects in 1usize..10,
            ops in 0usize..120,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let mut ts = OnlineTimestamper::new(Random::seeded(seed));
            for e in c.events() {
                ts.observe(e.thread, e.object).unwrap();
            }
            let map = ts.engine().components().clone();
            for e in c.events() {
                prop_assert!(map.contains_thread(e.thread) || map.contains_object(e.object));
            }
            prop_assert_eq!(ts.stats().clock_size(), ts.clock_size());
        }

        /// Online popularity timestamps are always valid vector clocks.
        #[test]
        fn prop_popularity_online_clock_valid(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..80,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let run = OnlineTimestamper::new(Popularity::new()).run(&c).unwrap();
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &run.timestamps, &oracle));
        }
    }
}
