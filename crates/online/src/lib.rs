//! Online mixed-vector-clock mechanisms (Section IV of the paper).
//!
//! In the online setting events arrive one at a time and the components of
//! the mixed vector clock may only be *added*, never removed or replaced —
//! existing timestamps would otherwise be invalidated.  When a revealed event
//! `(t, o)` is not covered by the current components, a mechanism must pick
//! which endpoint to promote to a component:
//!
//! * [`Naive`] — always pick the thread (or always the object); the final
//!   clock has one component per active thread (or object), exactly the
//!   traditional vector clock.
//! * [`Random`] — pick the thread or the object with probability ½ each.
//! * [`Popularity`] — pick the endpoint with higher popularity
//!   `deg(v) / |E|` in the bipartite graph revealed so far (Definition 1).
//! * [`Adaptive`] — the practical hybrid sketched in the paper's conclusion
//!   of Section V: use Popularity while the revealed graph is small and
//!   sparse, and fall back to Naive once density or node-count thresholds are
//!   exceeded.
//!
//! The [`OnlineTimestamper`] couples any mechanism with the incremental
//! [`TimestampingEngine`](mvc_core::TimestampingEngine), so the chosen
//! components immediately drive real timestamps, and implements the unified
//! [`Timestamper`](mvc_core::Timestamper) trait so harnesses can swap it for
//! the batch replay path or the raw engine; [`simulate_final_size`] replays
//! only the component-selection decision over an edge stream, which is what
//! the evaluation figures need.
//!
//! [`OnlineMechanism`] is dyn-compatible, and the [`MechanismRegistry`]
//! builds any of the paper's mechanisms as a `Box<dyn OnlineMechanism>` from
//! its stable name, so sweeps are configured with strings instead of type
//! lists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod competitive;
pub mod mechanism;
pub mod registry;
pub mod timestamper;

pub use competitive::{CompetitiveReport, CompetitiveTracker, TrajectoryPoint};
pub use mechanism::{Adaptive, Naive, NaiveSide, OnlineMechanism, Popularity, Random};
pub use registry::{mechanism_from_name, MechanismRegistry, UnknownMechanismError};
pub use timestamper::{
    simulate_components, simulate_final_size, MechanismStats, OnlineRun, OnlineTimestamper,
};
