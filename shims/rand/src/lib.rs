//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of `rand` the workspace actually uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer ranges — on top of a self-contained xoshiro256\*\* generator
//! seeded through SplitMix64.  All call sites in the workspace construct the
//! generator from an explicit `u64` seed, so no OS entropy source is needed
//! and every run is reproducible.

#![forbid(unsafe_code)]

/// Low-level source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform sampling support, mirroring `rand::distributions`.
pub mod distributions {
    /// Range sampling traits, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        // Lemire-style unbiased bounded sampling on u64 widths.
        pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling over the largest multiple of `bound`.
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(bounded_u64(rng, span) as $t)
                    }
                }

                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add(bounded_u64(rng, span) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        self.start + unit * (self.end - self.start)
                    }
                }

                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        start + unit * (end - start)
                    }
                }
            )*};
        }

        impl_float_range!(f32, f64);
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded via
    /// SplitMix64 (deterministic, fast, and statistically strong enough for
    /// synthetic workload generation — not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unsized_rng_references_work() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 10);
    }
}
