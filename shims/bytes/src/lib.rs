//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of `bytes` used by `mvc_trace::codec`:
//! [`BytesMut`] as an append-only byte builder, [`Bytes`] as an immutable
//! buffer with a read cursor, and the [`Buf`] / [`BufMut`] traits backing
//! them.  Backed by a plain `Vec<u8>` — no shared-arc zero-copy machinery,
//! which the codec does not rely on.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read access to a byte cursor, mirroring `bytes::Buf`.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;

    /// Reads `len` bytes into an owned [`Bytes`], advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

/// Append access to a byte builder, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, byte: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

/// Immutable byte buffer with a read cursor, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn unread(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.unread()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.unread()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let byte = self.data[self.pos];
        self.pos += 1;
        byte
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + len]);
        self.pos += len;
        out
    }
}

/// Growable byte builder, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, byte: u8) {
        self.data.push(byte);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"MVC\x01");
        b.put_u8(7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 5);
        assert_eq!(&frozen.copy_to_bytes(4)[..], b"MVC\x01");
        assert_eq!(frozen.get_u8(), 7);
        assert!(!frozen.has_remaining());
    }
}
