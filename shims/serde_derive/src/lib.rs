//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal stand-in: the derives accept the same attribute grammar
//! (`#[serde(...)]` container/field attributes are tolerated) but expand to
//! nothing.  Nothing in this workspace bounds on `Serialize`/`Deserialize`,
//! so empty expansions are sufficient for a correct build; swapping in the
//! real crates later is a pure `Cargo.toml` change.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
