//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by a
//! mutex-protected `VecDeque`.  Unlike `std::sync::mpsc`, the senders are
//! `Sync` (crossbeam's senders can be shared behind an `Arc` without
//! cloning per thread), which is what `mvc_runtime::session` relies on.
//! Throughput is adequate for trace recording; swap in the real crossbeam
//! for contended production use.
//!
//! Beyond the real crate's API subset, the shim adds two **extensions**:
//!
//! * [`Receiver::try_recv_batch`](channel::Receiver::try_recv_batch), which
//!   moves up to `max` queued messages under a single lock acquisition — the
//!   batched drain path for channel consumers.  When swapping in the real
//!   crossbeam, replace each call with `receiver.try_iter().take(max)`
//!   (lock-free there), or keep a one-function adapter.
//! * [`SegQueue::pop_batch`](queue::SegQueue::pop_batch), the same batched
//!   drain for the segmented queue.  The real `crossbeam::queue::SegQueue`
//!   is lock-free; replace `pop_batch` with a `while let Some(v) = q.pop()`
//!   loop (bounded by `max`) when swapping it in.

#![forbid(unsafe_code)]

/// Concurrent queues, mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Events per segment.  The real crate uses 32; a larger segment
    /// amortises the shim's allocation better because each segment is one
    /// heap block that lives until fully drained.
    const SEGMENT_CAPACITY: usize = 256;

    /// An unbounded queue of fixed-size segments, mirroring
    /// `crossbeam::queue::SegQueue`.
    ///
    /// Producers [`push`](SegQueue::push) through a shared reference; memory
    /// grows one segment (not one element) at a time and is reclaimed a
    /// whole segment at a time as the consumer drains.  The real crate is
    /// lock-free; this shim serialises on one internal mutex, which is still
    /// uncontended in the intended deployment — one queue *per producer
    /// thread* (see `mvc_runtime::ingest`), where the only contention is the
    /// occasional drain.
    pub struct SegQueue<T> {
        inner: Mutex<Segments<T>>,
    }

    struct Segments<T> {
        /// Ring of segments: the consumer pops from the front segment, the
        /// producer pushes onto the back one.  Each segment is itself a ring
        /// (`VecDeque` with fixed capacity) so a pop is O(1) without
        /// shifting.
        ring: VecDeque<VecDeque<T>>,
        len: usize,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(Segments {
                    ring: VecDeque::new(),
                    len: 0,
                }),
            }
        }

        /// Appends an element at the back of the queue.
        pub fn push(&self, value: T) {
            let mut inner = self.inner.lock().unwrap();
            let needs_segment = inner
                .ring
                .back()
                .is_none_or(|seg| seg.len() == SEGMENT_CAPACITY);
            if needs_segment {
                inner
                    .ring
                    .push_back(VecDeque::with_capacity(SEGMENT_CAPACITY));
            }
            inner
                .ring
                .back_mut()
                .expect("segment exists")
                .push_back(value);
            inner.len += 1;
        }

        /// Removes the element at the front of the queue, if any.
        pub fn pop(&self) -> Option<T> {
            let mut inner = self.inner.lock().unwrap();
            let value = inner.ring.front_mut()?.pop_front();
            if value.is_some() {
                inner.len -= 1;
                if inner.ring.front().is_some_and(|seg| seg.is_empty()) {
                    inner.ring.pop_front();
                }
            }
            value
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len
        }

        /// Returns `true` if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Moves up to `max` front elements into `buf` under a single lock
        /// acquisition, returning how many were moved.  `Copy` elements are
        /// transferred slice-wise (one or two `memcpy`s per segment), which
        /// is what makes the drain side cheap.  (Shim extension — see the
        /// crate docs for the real-crossbeam equivalent.)
        pub fn pop_batch(&self, buf: &mut Vec<T>, max: usize) -> usize
        where
            T: Copy,
        {
            let mut inner = self.inner.lock().unwrap();
            let take = inner.len.min(max);
            buf.reserve(take);
            let mut moved = 0;
            while moved < take {
                let segment = inner.ring.front_mut().expect("len > 0 implies a segment");
                let from_segment = segment.len().min(take - moved);
                let (front, back) = segment.as_slices();
                if from_segment <= front.len() {
                    buf.extend_from_slice(&front[..from_segment]);
                } else {
                    buf.extend_from_slice(front);
                    buf.extend_from_slice(&back[..from_segment - front.len()]);
                }
                segment.drain(..from_segment);
                moved += from_segment;
                if segment.is_empty() {
                    inner.ring.pop_front();
                }
            }
            inner.len -= take;
            take
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SegQueue { .. }")
        }
    }
}

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned when sending on a channel with no receiver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Hold the queue lock while notifying so the disconnect
                // cannot slip between a blocked receiver's empty-queue check
                // and its wait() — without this the final wakeup can be lost
                // and recv() would sleep forever.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Pops a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Iterator over currently queued messages; stops when the queue is
        /// momentarily empty.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Moves up to `max` currently queued messages into `buf` under a
        /// single lock acquisition, returning how many were moved.
        ///
        /// This is the batched counterpart of [`try_recv`](Self::try_recv):
        /// a drain loop pays one lock round-trip per *batch* instead of one
        /// per message, which is what makes the sequential engine's pump
        /// path cheap under multi-producer contention.  (Shim extension —
        /// see the crate docs for the real-crossbeam equivalent.)
        pub fn try_recv_batch(&self, buf: &mut Vec<T>, max: usize) -> usize {
            let mut queue = self.shared.queue.lock().unwrap();
            let take = queue.len().min(max);
            buf.reserve(take);
            buf.extend(queue.drain(..take));
            take
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn multi_producer_drain() {
        let (sender, receiver) = unbounded();
        let sender = Arc::new(sender);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&sender);
                thread::spawn(move || {
                    for i in 0..100 {
                        s.send((t, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(sender);
        let mut got = 0;
        while receiver.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 400);
        assert_eq!(receiver.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_batch_moves_up_to_max_in_order() {
        let (sender, receiver) = unbounded();
        for i in 0..10 {
            sender.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(receiver.try_recv_batch(&mut buf, 4), 4);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(receiver.try_recv_batch(&mut buf, 100), 6);
        assert_eq!(buf, (0..10).collect::<Vec<_>>(), "appends, keeps order");
        assert_eq!(receiver.try_recv_batch(&mut buf, 8), 0, "queue is empty");
        assert_eq!(receiver.try_recv(), Err(TryRecvError::Empty));
    }
}

#[cfg(test)]
mod queue_tests {
    use super::queue::SegQueue;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo_across_segments() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Cross several segment boundaries.
        for i in 0..1000 {
            q.push(i);
        }
        assert_eq!(q.len(), 1000);
        for i in 0..1000 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_respects_max_and_order() {
        let q = SegQueue::new();
        for i in 0..700 {
            q.push(i);
        }
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(&mut buf, 300), 300, "spans two segments");
        assert_eq!(buf, (0..300).collect::<Vec<_>>());
        assert_eq!(q.pop_batch(&mut buf, usize::MAX), 400);
        assert_eq!(buf, (0..700).collect::<Vec<_>>(), "appends, keeps order");
        assert_eq!(q.pop_batch(&mut buf, 8), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing() {
        let q = Arc::new(SegQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..10_000u64 {
                    q.push(i);
                }
            })
        };
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while got.len() < 10_000 {
            if q.pop_batch(&mut buf, 512) > 0 {
                got.append(&mut buf);
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>(), "FIFO per producer");
    }
}
