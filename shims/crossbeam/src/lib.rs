//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by a
//! mutex-protected `VecDeque`.  Unlike `std::sync::mpsc`, the senders are
//! `Sync` (crossbeam's senders can be shared behind an `Arc` without
//! cloning per thread), which is what `mvc_runtime::session` relies on.
//! Throughput is adequate for trace recording; swap in the real crossbeam
//! for contended production use.
//!
//! Beyond the real crate's API subset, the shim adds one **extension**:
//! [`Receiver::try_recv_batch`](channel::Receiver::try_recv_batch), which
//! moves up to `max` queued messages
//! under a single lock acquisition — the batched drain path used by
//! `mvc_runtime` (`LiveSession::pump`, `TraceSession::into_computation`).
//! When swapping in the real crossbeam, replace each call with
//! `receiver.try_iter().take(max)` (lock-free there), or keep a
//! one-function adapter; it is the only non-crossbeam API in this shim.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned when sending on a channel with no receiver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Hold the queue lock while notifying so the disconnect
                // cannot slip between a blocked receiver's empty-queue check
                // and its wait() — without this the final wakeup can be lost
                // and recv() would sleep forever.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Pops a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Iterator over currently queued messages; stops when the queue is
        /// momentarily empty.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Moves up to `max` currently queued messages into `buf` under a
        /// single lock acquisition, returning how many were moved.
        ///
        /// This is the batched counterpart of [`try_recv`](Self::try_recv):
        /// a drain loop pays one lock round-trip per *batch* instead of one
        /// per message, which is what makes the sequential engine's pump
        /// path cheap under multi-producer contention.  (Shim extension —
        /// see the crate docs for the real-crossbeam equivalent.)
        pub fn try_recv_batch(&self, buf: &mut Vec<T>, max: usize) -> usize {
            let mut queue = self.shared.queue.lock().unwrap();
            let take = queue.len().min(max);
            buf.reserve(take);
            buf.extend(queue.drain(..take));
            take
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn multi_producer_drain() {
        let (sender, receiver) = unbounded();
        let sender = Arc::new(sender);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&sender);
                thread::spawn(move || {
                    for i in 0..100 {
                        s.send((t, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(sender);
        let mut got = 0;
        while receiver.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 400);
        assert_eq!(receiver.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_batch_moves_up_to_max_in_order() {
        let (sender, receiver) = unbounded();
        for i in 0..10 {
            sender.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(receiver.try_recv_batch(&mut buf, 4), 4);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(receiver.try_recv_batch(&mut buf, 100), 6);
        assert_eq!(buf, (0..10).collect::<Vec<_>>(), "appends, keeps order");
        assert_eq!(receiver.try_recv_batch(&mut buf, 8), 0, "queue is empty");
        assert_eq!(receiver.try_recv(), Err(TryRecvError::Empty));
    }
}
