//! Offline shim for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides just
//! enough surface for the workspace to compile: the `Serialize` /
//! `Deserialize` traits as markers plus the no-op derive macros from the
//! sibling `serde_derive` shim.  No code in the workspace serializes through
//! serde yet (the trace codec is hand-rolled in `mvc_trace::codec`), so the
//! traits carry no methods.  Replacing this shim with the real `serde` is a
//! `Cargo.toml`-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::ser::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::de::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Serialization half of the shim, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the shim, mirroring `serde::de`.
pub mod de {
    pub use crate::Deserialize;
}
