//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of proptest the workspace uses: the [`proptest!`] macro over
//! `arg in strategy` parameters, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`test_runner::ProptestConfig`], numeric-range and tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: case `i` of every test derives its RNG seed from the
//!   test name and `i`, so failures reproduce without a persistence file.
//! * **No shrinking**: a failing case reports its generated inputs via the
//!   panic message (`Debug`-formatted) instead of minimising them.
//!
//! Swapping in the real proptest is a `Cargo.toml`-only change; the macro
//! grammar used by the workspace is a strict subset of the real one.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring
        /// `proptest::strategy::Strategy::prop_map`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    /// Strategy that always yields a clone of the same value, mirroring
    /// `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max: range.end.max(range.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-execution configuration and failure plumbing.

    use std::fmt;

    /// Configuration for a `proptest!` block, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property, carried out of the test body by `prop_assert!`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Derives the deterministic RNG for one test case from the test's name
    /// and the case index (FNV-1a over both).
    pub fn case_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(case);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        rand::rngs::StdRng::seed_from_u64(hash)
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests over `arg in strategy` parameters.
///
/// Supports the subset of the real grammar used in this workspace: an
/// optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(args...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                // Render the inputs before the body can move them.
                let inputs = format!("{:?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {err}\n  inputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..10,
            pair in (0u64..5, 0.0f64..1.0),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_respects_bounds(
            v in collection::vec((0usize..4, 0u8..2), 3..7),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for (x, y) in &v {
                prop_assert!(*x < 4);
                prop_assert!(*y < 2);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0usize..1000;
        let a = strat.generate(&mut crate::test_runner::case_rng("t", 7));
        let b = strat.generate(&mut crate::test_runner::case_rng("t", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // No `#[test]` attribute: invoked manually by the wrapper below to
        // observe the failure panic.
        fn always_failing_property(x in 0usize..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_inputs() {
        always_failing_property();
    }
}
