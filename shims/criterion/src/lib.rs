//! Offline shim for the `criterion` crate.
//!
//! Implements the API subset used by `crates/bench/benches/*`: benchmark
//! groups, [`BenchmarkId`], [`Throughput`], and timed [`Bencher::iter`]
//! loops, reporting a median per-iteration time (and derived throughput) on
//! stdout.  No statistical analysis, warm-up modelling, or HTML reports —
//! enough to compile every bench target and give honest ballpark numbers.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmark result, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Expected work per iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the median of several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed pass to touch caches.
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the expected work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        let samples = self.sample_size;
        self.criterion.run_one(&full, throughput, samples, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (`cargo bench -- <filter>`).
    pub fn configure_from_args(mut self) -> Self {
        // First non-flag argument, if any, filters benchmarks by substring.
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, None, 10, routine);
        self
    }

    fn run_one<F>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        samples: usize,
        mut routine: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            median: Duration::ZERO,
        };
        routine(&mut bencher);
        let median = bencher.median;
        match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("bench: {name:<50} median {median:>12?}  ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("bench: {name:<50} median {median:>12?}  ({rate:.0} B/s)");
            }
            _ => println!("bench: {name:<50} median {median:>12?}"),
        }
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the bench `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 100), &100usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        group.bench_function("plain", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
