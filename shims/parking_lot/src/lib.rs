//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly).  A poisoned std lock is recovered
//! rather than propagated, matching `parking_lot`'s behaviour of not
//! poisoning on panic.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock, mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
