//! Quickstart: build a small computation, compute the optimal mixed vector
//! clock, timestamp every event and compare a few pairs.
//!
//! Run with `cargo run --example quickstart`.

use mixed_vector_clock::prelude::*;
use mvc_clock::TimestampAssigner;

fn main() {
    // A small pipeline: producer -> queue -> consumer, plus an independent
    // logger thread writing to its own object.
    let mut computation = Computation::new();
    let producer = ThreadId(0);
    let consumer = ThreadId(1);
    let logger = ThreadId(2);
    let queue = ObjectId(0);
    let sink = ObjectId(1);
    let log = ObjectId(2);

    let produce = computation.record_op(producer, queue, OpKind::Write);
    let consume = computation.record_op(consumer, queue, OpKind::Read);
    let store = computation.record_op(consumer, sink, OpKind::Write);
    let log_entry = computation.record_op(logger, log, OpKind::Write);

    // 1. Offline optimal plan: which threads/objects become clock components?
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);
    println!(
        "computation: {} events, {} threads, {} objects",
        computation.len(),
        computation.thread_count(),
        computation.object_count()
    );
    println!("optimal mixed clock components ({}):", plan.clock_size());
    for component in plan.components().components() {
        println!("  - {component}");
    }
    println!(
        "traditional clocks would need {} (threads) or {} (objects) components",
        computation.thread_count(),
        computation.object_count()
    );

    // 2. Timestamp every event with the optimal mixed clock.
    let stamps = plan.assigner().assign(&computation);
    for event in computation.events() {
        println!("  {event}  ->  {}", stamps[event.id.index()]);
    }

    // 3. Ask causality questions by comparing timestamps.
    let ordered = stamps[produce.index()].compare(&stamps[store.index()]);
    let unrelated = stamps[consume.index()].compare(&stamps[log_entry.index()]);
    println!("produce vs store:   {ordered}");
    println!("consume vs log:     {unrelated}");

    // 4. Sanity: the mixed clock characterises happened-before exactly.
    let report = ClockSizeReport::analyze(&computation);
    println!("{report}");
    assert!(mvc_core::verify_assignment(&computation, &stamps));
    println!("mixed clock verified against the happened-before oracle ✔");
}
