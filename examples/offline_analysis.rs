//! Offline trace analysis: generate several large synthetic workloads (or
//! decode a recorded binary trace), run the offline optimal algorithm on
//! each, and report how much smaller the mixed vector clock is than the
//! traditional thread- and object-based clocks.
//!
//! Run with `cargo run --example offline_analysis`.

use mixed_vector_clock::prelude::*;
use mvc_trace::codec;
use mvc_trace::{WorkloadBuilder, WorkloadKind};

fn main() {
    // Keep the interaction graphs sparse (the paper's regime): the number of
    // operations is small relative to threads × objects, so most thread-object
    // pairs never interact and the minimum cover can undercut both sides.
    let workloads: Vec<(&str, usize, WorkloadKind)> = vec![
        ("uniform sparse", 250, WorkloadKind::Uniform),
        (
            "nonuniform (hot 10%, 20x)",
            900,
            WorkloadKind::Nonuniform {
                hot_fraction: 0.1,
                hot_boost: 20.0,
            },
        ),
        (
            "producer-consumer (4 queues)",
            5_000,
            WorkloadKind::ProducerConsumer { queues: 4 },
        ),
        (
            "lock-striped (2% cross-stripe)",
            3_000,
            WorkloadKind::LockStriped {
                cross_stripe_prob: 0.02,
            },
        ),
        ("phased (4 phases)", 900, WorkloadKind::Phased { phases: 4 }),
    ];

    println!(
        "{:<32} {:>7} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "workload", "events", "threads", "objects", "mixed", "chain", "reduction"
    );
    for (name, operations, kind) in workloads {
        let computation = WorkloadBuilder::new(64, 96)
            .operations(operations)
            .kind(kind)
            .seed(99)
            .build();
        let report = ClockSizeReport::analyze(&computation);
        println!(
            "{:<32} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8.0}%",
            name,
            report.events,
            report.thread_clock,
            report.object_clock,
            report.optimal_mixed,
            report.chain_clock,
            (1.0 - report.reduction_ratio()) * 100.0
        );
    }

    // Round-trip one workload through the binary trace codec, the way a
    // recorded production trace would be stored and analysed later.
    let recorded = WorkloadBuilder::new(32, 32)
        .operations(5_000)
        .kind(WorkloadKind::Nonuniform {
            hot_fraction: 0.1,
            hot_boost: 12.0,
        })
        .seed(7)
        .build();
    let encoded = codec::encode(&recorded);
    println!(
        "\nencoded a {}-event trace into {} bytes ({:.2} bytes/event)",
        recorded.len(),
        encoded.len(),
        encoded.len() as f64 / recorded.len() as f64
    );
    let decoded = codec::decode(&encoded).expect("round-trip decode");
    let plan = OfflineOptimizer::new().plan_for_computation(&decoded);
    println!(
        "replayed trace: optimal mixed clock has {} components (threads {}, objects {})",
        plan.clock_size(),
        decoded.thread_count(),
        decoded.object_count()
    );
}
