//! Debugging scenario: trace a real multithreaded bank workload and use the
//! optimal mixed vector clock to find atomicity-violation candidates — pairs
//! of causally concurrent operations on accounts that are supposed to change
//! together.
//!
//! Run with `cargo run --example debug_race`.

use std::thread;

use mixed_vector_clock::prelude::*;

fn main() {
    let session = TraceSession::new();

    // Two accounts whose balances must always sum to 1000, plus an audit log.
    let account_a = session.shared_object("account-a", 500i64);
    let account_b = session.shared_object("account-b", 500i64);
    let audit_log = session.shared_object("audit-log", Vec::<String>::new());

    let mut workers = Vec::new();

    // Transfer threads move money from A to B (two locked steps — not atomic
    // as a pair, which is exactly the bug class we want to surface).
    for i in 0..2 {
        let handle = session.register_thread(&format!("transfer-{i}"));
        let a = account_a.clone();
        let b = account_b.clone();
        workers.push(thread::spawn(move || {
            for _ in 0..20 {
                a.write(&handle, |balance| *balance -= 10);
                b.write(&handle, |balance| *balance += 10);
            }
        }));
    }

    // The auditor reads both balances and records the sum.
    let auditor = session.register_thread("auditor");
    {
        let a = account_a.clone();
        let b = account_b.clone();
        let log = audit_log.clone();
        workers.push(thread::spawn(move || {
            for _ in 0..10 {
                let left = a.read(&auditor, |balance| *balance);
                let right = b.read(&auditor, |balance| *balance);
                log.write(&auditor, |entries| {
                    entries.push(format!("sum = {}", left + right))
                });
            }
        }));
    }

    for worker in workers {
        worker.join().expect("worker thread panicked");
    }

    // Snapshot of the final balances.
    let probe = session.register_thread("probe");
    let total = account_a.read(&probe, |a| *a) + account_b.read(&probe, |b| *b);
    println!("final balance total: {total} (invariant: 1000)");

    // Turn the recorded execution into a computation and analyse it.
    let computation = session.into_computation();
    println!(
        "recorded {} operations by {} threads on {} objects",
        computation.len(),
        computation.thread_count(),
        computation.object_count()
    );

    let report = ClockSizeReport::analyze(&computation);
    println!("{report}");

    // Accounts A (object 0) and B (object 1) form one invariant group.
    let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
    let conflicts = analyzer.analyze(&computation);
    println!(
        "found {} concurrent conflicting pairs across the account group",
        conflicts.len()
    );
    for pair in conflicts.iter().take(5) {
        let first = computation.event(pair.first);
        let second = computation.event(pair.second);
        println!(
            "  {} ({} on {}) is concurrent with {} ({} on {})",
            first.id, first.kind, first.object, second.id, second.kind, second.object
        );
    }
    if conflicts.len() > 5 {
        println!("  ... and {} more", conflicts.len() - 5);
    }
    println!(
        "each pair is a window where the auditor could observe a broken invariant\n\
         (the per-account operations are serialised, but the A+B pair is not atomic)"
    );
}
