//! Online monitoring: events arrive one at a time (no prior knowledge of the
//! thread–object interaction), and the online mechanisms decide which threads
//! and objects become clock components.  Every mechanism is selected **by
//! name** through the [`MechanismRegistry`] and driven as a
//! `Box<dyn OnlineMechanism>` — no concrete mechanism types appear here —
//! and compared against the offline optimum on the same stream.
//!
//! Run with `cargo run --example online_monitoring`.

use mixed_vector_clock::prelude::*;
use mvc_trace::generator::random_graph_computation;

fn main() {
    // A sparse, skewed interaction graph in the paper's evaluation regime
    // (50 threads, 50 objects, density ~0.05, a small hot set receiving most
    // traffic) — where the Popularity mechanism shines.
    let (_, computation) = random_graph_computation(
        50,
        50,
        0.05,
        GraphScenario::Nonuniform {
            hot_fraction: 0.15,
            hot_boost: 10.0,
        },
        2024,
    );
    println!(
        "streaming {} events ({} threads, {} objects active)",
        computation.len(),
        computation.thread_count(),
        computation.object_count()
    );

    // Offline optimum for reference (requires the whole computation up front).
    let optimal = OfflineOptimizer::new()
        .plan_for_computation(&computation)
        .clock_size();

    let registry = MechanismRegistry::new().seed(7);
    println!("\nfinal mixed-clock size by mechanism (offline optimum = {optimal}):");
    for &name in MechanismRegistry::names() {
        let mechanism = registry.from_name(name).expect("registry name");
        let run = OnlineTimestamper::new(mechanism)
            .run(&computation)
            .expect("registry mechanisms cover their own events");
        // Every online run must still be a valid vector clock.
        assert!(mvc_core::verify_assignment(&computation, &run.timestamps));
        let size = run.stats.clock_size();
        let bar = "#".repeat(size / 2);
        println!("  {name:<18} {size:>4}  {bar}");
    }

    // Live monitoring: the same machinery wrapped in a thread-safe monitor.
    let monitor = OnlineMonitor::new();
    let enqueue = monitor.record(ThreadId(0), ObjectId(0)).unwrap();
    let dequeue = monitor.record(ThreadId(1), ObjectId(0)).unwrap();
    let unrelated = monitor.record(ThreadId(2), ObjectId(9)).unwrap();
    println!("\nlive monitor demo:");
    println!(
        "  enqueue -> dequeue ordered:   {}",
        monitor.happened_before(&enqueue, &dequeue)
    );
    println!(
        "  enqueue || unrelated:         {}",
        monitor.concurrent(&enqueue, &unrelated)
    );
    println!("  monitor clock size so far:    {}", monitor.clock_size());

    // Live session demo: a traced execution timestamped while it runs, via
    // the unified Timestamper trait.
    let session = TraceSession::new();
    let worker = session.register_thread("worker");
    let queue = session.shared_object("queue", Vec::<u64>::new());
    let mut live = session.live(OnlineTimestamper::new(
        registry.from_name("adaptive").expect("registry name"),
    ));
    for i in 0..5 {
        queue.write(&worker, |q| q.push(i));
    }
    live.pump().expect("adaptive covers its own events");
    let run = live.finish().expect("drained");
    println!(
        "\nlive session demo: {} events stamped live, final width {}",
        run.report.events,
        run.report.width()
    );
    assert!(run.timestamps[0].strictly_less_than(&run.timestamps[4]));
}
