//! Online monitoring: events arrive one at a time (no prior knowledge of the
//! thread–object interaction), and the online mechanisms decide which threads
//! and objects become clock components.  Compares the final clock size of
//! Naive, Random, Popularity and Adaptive against the offline optimum on the
//! same stream.
//!
//! Run with `cargo run --example online_monitoring`.

use mixed_vector_clock::prelude::*;
use mvc_trace::generator::random_graph_computation;

fn main() {
    // A sparse, skewed interaction graph in the paper's evaluation regime
    // (50 threads, 50 objects, density ~0.05, a small hot set receiving most
    // traffic) — where the Popularity mechanism shines.
    let (_, computation) = random_graph_computation(
        50,
        50,
        0.05,
        GraphScenario::Nonuniform {
            hot_fraction: 0.15,
            hot_boost: 10.0,
        },
        2024,
    );
    println!(
        "streaming {} events ({} threads, {} objects active)",
        computation.len(),
        computation.thread_count(),
        computation.object_count()
    );

    // Offline optimum for reference (requires the whole computation up front).
    let optimal = OfflineOptimizer::new()
        .plan_for_computation(&computation)
        .clock_size();

    let runs: Vec<(&str, usize)> = vec![
        run(
            "naive (threads)",
            OnlineTimestamper::new(Naive::threads()),
            &computation,
        ),
        run(
            "naive (objects)",
            OnlineTimestamper::new(Naive::objects()),
            &computation,
        ),
        run(
            "random",
            OnlineTimestamper::new(Random::seeded(7)),
            &computation,
        ),
        run(
            "popularity",
            OnlineTimestamper::new(Popularity::new()),
            &computation,
        ),
        run(
            "adaptive",
            OnlineTimestamper::new(Adaptive::with_paper_thresholds()),
            &computation,
        ),
    ];

    println!("\nfinal mixed-clock size by mechanism (offline optimum = {optimal}):");
    for (name, size) in &runs {
        let bar = "#".repeat(*size / 2);
        println!("  {name:<18} {size:>4}  {bar}");
    }

    // Live monitoring: the same machinery wrapped in a thread-safe monitor.
    let monitor = OnlineMonitor::new();
    let enqueue = monitor.record(ThreadId(0), ObjectId(0));
    let dequeue = monitor.record(ThreadId(1), ObjectId(0));
    let unrelated = monitor.record(ThreadId(2), ObjectId(9));
    println!("\nlive monitor demo:");
    println!(
        "  enqueue -> dequeue ordered:   {}",
        monitor.happened_before(&enqueue, &dequeue)
    );
    println!(
        "  enqueue || unrelated:         {}",
        monitor.concurrent(&enqueue, &unrelated)
    );
    println!("  monitor clock size so far:    {}", monitor.clock_size());
}

fn run<M: OnlineMechanism>(
    name: &'static str,
    timestamper: OnlineTimestamper<M>,
    computation: &Computation,
) -> (&'static str, usize) {
    let result = timestamper.run(computation);
    // Every online run must still be a valid vector clock.
    assert!(mvc_core::verify_assignment(computation, &result.timestamps));
    (name, result.stats.clock_size())
}
