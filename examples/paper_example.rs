//! Reproduces the paper's running example (Figures 1–3): the 4-thread /
//! 4-object computation, its thread–object bipartite graph with the minimum
//! vertex cover highlighted, and the mixed-clock timestamps of every event.
//!
//! Run with `cargo run --example paper_example`.

use mixed_vector_clock::prelude::*;
use mvc_clock::TimestampAssigner;
use mvc_graph::dot::to_dot;
use mvc_trace::examples::paper_figure1;

fn main() {
    // Figure 1: the computation.
    let computation = paper_figure1();
    println!("=== Figure 1: computation ===");
    for event in computation.events() {
        println!(
            "  {}: thread T{} operates on object O{}",
            event.id,
            event.thread.index() + 1,
            event.object.index() + 1
        );
    }

    // Figure 2: the thread-object bipartite graph and its minimum vertex cover.
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);
    println!("\n=== Figure 2: thread-object bipartite graph ===");
    println!(
        "{} threads, {} objects, {} edges, maximum matching = {}",
        computation.thread_count(),
        computation.object_count(),
        plan.graph().edge_count(),
        plan.matching_size()
    );
    println!("minimum vertex cover (mixed clock components):");
    for component in plan.components().components() {
        println!(
            "  - {component} (paper numbering: {})",
            paper_name(component)
        );
    }
    println!(
        "\nGraphviz DOT (filled vertices = cover):\n{}",
        to_dot(plan.graph(), Some(plan.cover()))
    );

    // Figure 3: timestamps of every event under the mixed clock.
    println!("=== Figure 3: mixed-vector-clock timestamps ===");
    let stamps = plan.assigner().assign(&computation);
    for event in computation.events() {
        println!(
            "  [T{}, O{}]  ->  {}",
            event.thread.index() + 1,
            event.object.index() + 1,
            stamps[event.id.index()]
        );
    }

    // The ordering argued in Section III-C: [T2,O1] -> [T3,O3].
    let t2_o1 = &stamps[0];
    let t3_o3 = &stamps[4];
    println!(
        "\n[T2,O1] {} happened before [T3,O3] {}: {}",
        t2_o1,
        t3_o3,
        t2_o1.strictly_less_than(t3_o3)
    );

    assert_eq!(plan.clock_size(), 3);
    assert!(mvc_core::verify_assignment(&computation, &stamps));
    println!("\nreproduced: mixed clock of size 3 (< 4 threads, < 4 objects), valid ✔");
}

fn paper_name(component: &Component) -> String {
    match component {
        Component::Thread(t) => format!("T{}", t.index() + 1),
        Component::Object(o) => format!("O{}", o.index() + 1),
    }
}
